package core

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

// TrainEnv supplies the training-loop inputs that are not neighbor
// expansions: positive edge batches (TRAVERSE), the negative candidate pool
// with raw positive-occurrence counts (NEGATIVE applies the unigram^0.75
// smoothing itself), and the size of the vertex universe. A local graph and
// a distributed cluster client both satisfy it, which is what decouples the
// trainer from *graph.Graph.
type TrainEnv interface {
	// SampleEdges draws n edges of type t uniformly over the edge set.
	SampleEdges(t graph.EdgeType, n int) ([]graph.Edge, error)
	// NegativePool returns negative candidates for edge type t with their
	// unnormalized positive counts (in-degrees).
	NegativePool(t graph.EdgeType) (cands []graph.ID, counts []float64, err error)
	// NumVertices reports the vertex universe size (IDs are dense).
	NumVertices() int
}

// LocalEnv adapts an in-memory graph to TrainEnv.
type LocalEnv struct {
	G    *graph.Graph
	trav *sampling.Traverse
}

// NewLocalEnv creates the local-graph trainer environment.
func NewLocalEnv(g *graph.Graph, rng *rand.Rand) *LocalEnv {
	return &LocalEnv{G: g, trav: sampling.NewTraverse(g, rng)}
}

// SampleEdges implements TrainEnv.
func (e *LocalEnv) SampleEdges(t graph.EdgeType, n int) ([]graph.Edge, error) {
	return e.trav.SampleEdges(t, n), nil
}

// AppendEdges implements BatchEnv: draw-for-draw identical to SampleEdges
// but into a recycled buffer. Local graphs have no update epochs or
// snapshot pins, so both are ignored.
func (e *LocalEnv) AppendEdges(dst []graph.Edge, t graph.EdgeType, n int, _ *sampling.Pin, _ *sampling.EpochSpan) ([]graph.Edge, error) {
	return e.trav.AppendEdges(dst, t, n), nil
}

// NegativePool implements TrainEnv.
func (e *LocalEnv) NegativePool(t graph.EdgeType) ([]graph.ID, []float64, error) {
	cands, counts := sampling.NegativePoolOf(e.G, t)
	return cands, counts, nil
}

// NumVertices implements TrainEnv.
func (e *LocalEnv) NumVertices() int { return e.G.NumVertices() }

// LinkTrainer trains an Encoder on unsupervised link prediction with
// negative sampling: edges of the target type are positives, NEGATIVE
// sampling provides negatives, and the score of a pair is the dot product
// of their encoded embeddings. This is the training loop that Sections 3.3
// and 4.1 sketch (TRAVERSE batch -> NEIGHBORHOOD context -> NEGATIVE
// samples -> AGGREGATE/COMBINE forward -> backward).
//
// The trainer never touches a graph directly: neighbor expansion goes
// through the batch-first sampling.Source seam and everything else through
// TrainEnv, so the same loop drives a local graph or live RPC shards.
//
// Batch production and consumption are decoupled: a BatchSource assembles
// MiniBatches (SyncSource inline, Pipeline ahead of the consumer on worker
// goroutines) and Step consumes one — forward, loss, backward, optimizer —
// without doing any sampling of its own. Train and StepNext tie the two
// together.
type LinkTrainer struct {
	Env      TrainEnv
	Src      sampling.Source
	Enc      *Encoder
	EdgeType graph.EdgeType
	HopNums  []int
	Batch    int
	NegK     int
	Opt      nn.Optimizer
	Rng      *rand.Rand

	// ContextFn, when non-nil, overrides NEIGHBORHOOD sampling (FastGCN's
	// layer-wise sampling swaps the SAMPLE strategy this way). Batches then
	// carry no contexts and Step samples at encode time; ContextFn closures
	// are not required to be goroutine-safe, so they are incompatible with
	// a Pipeline source.
	ContextFn func(vs []graph.ID) (*sampling.Context, error)

	// NegRefresh, when positive over an EpochedEnv, rebuilds the negative
	// pool from a fresh NegativePool call whenever the environment's
	// observed head epoch has advanced by at least NegRefresh since the
	// pool was last built — on a streaming graph the pool would otherwise
	// stay frozen at construction time forever. The rebuild consumes zero
	// rng draws, so refreshed and unrefreshed runs stay draw-aligned.
	NegRefresh uint64

	nbr *sampling.Neighborhood
	neg *sampling.Negative

	negEpoch    uint64 // observed head when the pool was last (re)built
	negRebuilds atomic.Int64

	// source produces the trainer's batches; nil until first use, when the
	// depth-0 SyncSource is installed. external marks a source installed by
	// SetSource, whose producer goroutines own the training random streams.
	source   BatchSource
	external bool

	// srng seeds NEIGHBORHOOD expansion in sync mode; created lazily from
	// Rng on first use (after the first batch's edge and negative draws,
	// which keeps the historical draw order). Inference never touches it:
	// Embed/Score/EmbedAll sample from a per-call fixed-seed stream, so
	// they are safe for concurrent callers and repeatable call over call.
	srng *sampling.Rng

	prefetch    PrefetchingFeatures
	prefetchSet bool
}

// inferenceSeed seeds the per-call inference sampling stream (any fixed
// constant works; inference must simply be deterministic and race-free —
// every Embed/Score call starts its own stream here, so concurrent calls
// never contend and identical inputs sample identical contexts).
const inferenceSeed = 0xA1160A1160A11601

// TrainerConfig bundles LinkTrainer construction options.
type TrainerConfig struct {
	EdgeType graph.EdgeType
	HopNums  []int
	Batch    int
	NegK     int
	LR       float64
	// NegRefresh is the epoch-staleness threshold for negative-pool
	// rebuilds; 0 (the default) keeps the historical frozen pool.
	NegRefresh uint64
}

// DefaultTrainerConfig returns sensible defaults for the laptop-scale
// benchmarks.
func DefaultTrainerConfig() TrainerConfig {
	return TrainerConfig{HopNums: []int{5, 3}, Batch: 64, NegK: 4, LR: 0.01}
}

// NewLinkTrainer assembles the trainer over a local in-memory graph.
func NewLinkTrainer(g *graph.Graph, enc *Encoder, cfg TrainerConfig, rng *rand.Rand) *LinkTrainer {
	tr, err := NewLinkTrainerOver(NewLocalEnv(g, rng), sampling.NewGraphSource(g), enc, cfg, rng)
	if err != nil {
		// LocalEnv never fails; keep the historical infallible signature.
		panic(err)
	}
	return tr
}

// NewLinkTrainerOver assembles the trainer over any neighbor Source and
// TrainEnv pair — the seam that lets distributed GraphSAGE training run on
// live RPC shards.
func NewLinkTrainerOver(env TrainEnv, src sampling.Source, enc *Encoder, cfg TrainerConfig, rng *rand.Rand) (*LinkTrainer, error) {
	cands, counts, err := env.NegativePool(cfg.EdgeType)
	if err != nil {
		return nil, err
	}
	tr := &LinkTrainer{
		Env: env, Src: src, Enc: enc, EdgeType: cfg.EdgeType, HopNums: cfg.HopNums,
		Batch: cfg.Batch, NegK: cfg.NegK, NegRefresh: cfg.NegRefresh,
		Opt: nn.NewAdam(cfg.LR), Rng: rng,
		nbr: sampling.NewNeighborhood(src, rng),
		neg: sampling.NewNegativeFromPool(cands, sampling.UnigramWeights(counts), rng),
	}
	if ee, ok := env.(EpochedEnv); ok {
		tr.negEpoch = ee.ObservedEpoch()
	}
	return tr, nil
}

// NegRebuilds reports how many times the negative pool has been rebuilt by
// the epoch-refresh policy (diagnostics and tests).
func (tr *LinkTrainer) NegRebuilds() int64 { return tr.negRebuilds.Load() }

// maybeRefreshNegatives rebuilds the negative pool when the environment's
// observed head epoch has outrun the pool by at least NegRefresh. Called
// from assembleEdges on the goroutine that owns the training streams, after
// the edge batch succeeds and before negatives are drawn: the rebuild
// consumes no rng draws (the alias table is deterministic in the pool), so
// the negative draw stream continues uninterrupted over the new pool. A
// transient fetch failure skips the refresh — serving draws from the stale
// pool IS the degraded mode — while an application error surfaces.
func (tr *LinkTrainer) maybeRefreshNegatives() error {
	if tr.NegRefresh == 0 {
		return nil
	}
	ee, ok := tr.Env.(EpochedEnv)
	if !ok {
		return nil
	}
	h := ee.ObservedEpoch()
	if h < tr.negEpoch+tr.NegRefresh {
		return nil
	}
	cands, counts, err := tr.Env.NegativePool(tr.EdgeType)
	if err != nil {
		if transientErr(err) {
			return nil
		}
		return err
	}
	tr.neg = sampling.NewNegativeFromPool(cands, sampling.UnigramWeights(counts), tr.neg.Rng)
	tr.negEpoch = h
	tr.negRebuilds.Add(1)
	return nil
}

// Source returns the trainer's batch producer, installing the depth-0
// SyncSource on first use.
func (tr *LinkTrainer) Source() BatchSource {
	if tr.source == nil {
		tr.source = NewSyncSource(tr)
	}
	return tr.source
}

// SetSource installs an external batch producer (a Pipeline). Call it
// before the first training step — the producer takes over the trainer's
// sequential random streams — and manage the source's lifecycle yourself
// (Close a Pipeline when training ends).
func (tr *LinkTrainer) SetSource(s BatchSource) {
	tr.source = s
	tr.external = true
}

// ensureSrng lazily creates the NEIGHBORHOOD seed stream; the draw from Rng
// happens at the historical point (after the first batch's edge and
// negative draws), keeping fixed-seed runs bit-identical across the
// refactor to batch sources.
func (tr *LinkTrainer) ensureSrng() {
	if tr.srng == nil {
		tr.srng = sampling.NewRng(uint64(tr.Rng.Int63()))
	}
}

// prefetcher returns the feature source's prefetching capability, if any.
func (tr *LinkTrainer) prefetcher() PrefetchingFeatures {
	if !tr.prefetchSet {
		tr.prefetch = FindPrefetcher(tr.Enc.Features)
		tr.prefetchSet = true
	}
	return tr.prefetch
}

// Step consumes one assembled MiniBatch: three encodes on one tape, the
// negative-sampling loss, backward, gradient clip and optimizer step. All
// sampling happened at batch-assembly time (or happens via ContextFn);
// Step itself performs pure compute, which is exactly what a prefetching
// source overlaps with the next batches' sampling.
func (tr *LinkTrainer) Step(mb *MiniBatch) (float64, error) {
	if pf := tr.prefetcher(); pf != nil && mb.Attrs != nil {
		pf.ServePrefetched(mb.Attrs)
		defer pf.ServePrefetched(nil)
	}

	t := nn.NewTape()
	hs, err := tr.encodeTrain(t, mb, 0, mb.Src)
	if err != nil {
		return 0, err
	}
	hd, err := tr.encodeTrain(t, mb, 1, mb.Dst)
	if err != nil {
		return 0, err
	}
	hn, err := tr.encodeTrain(t, mb, 2, mb.Negs)
	if err != nil {
		return 0, err
	}

	// Repeat each source NegK times to align with its negatives.
	rep := make([]int, len(mb.Negs))
	for i := range rep {
		rep[i] = i / tr.NegK
	}
	hsRep := t.Gather(hs, rep)

	pos := t.RowDot(hs, hd)
	neg := t.RowDot(hsRep, hn)
	loss := t.NegSamplingLoss(pos, neg)
	t.Backward(loss)

	params := tr.Enc.Params()
	nn.ClipGrad(params, 5.0)
	tr.Opt.Step(params)
	return loss.Val.Data[0], nil
}

// StepNext pulls one batch from the trainer's source, steps on it and
// recycles it.
func (tr *LinkTrainer) StepNext() (float64, error) {
	src := tr.Source()
	mb, err := src.Next()
	if err != nil {
		return 0, err
	}
	l, err := tr.Step(mb)
	src.Recycle(mb)
	return l, err
}

// Train runs n steps and returns per-step losses.
func (tr *LinkTrainer) Train(steps int) ([]float64, error) {
	losses := make([]float64, steps)
	for i := range losses {
		l, err := tr.StepNext()
		if err != nil {
			return nil, err
		}
		losses[i] = l
	}
	return losses, nil
}

// encodeTrain encodes one of the batch's three vertex lists using its
// pre-sampled context (or ContextFn when the SAMPLE strategy is overridden).
func (tr *LinkTrainer) encodeTrain(t *nn.Tape, mb *MiniBatch, i int, vs []graph.ID) (*nn.Node, error) {
	if tr.ContextFn != nil {
		ctx, err := tr.ContextFn(vs)
		if err != nil {
			return nil, err
		}
		return tr.Enc.Encode(t, ctx), nil
	}
	if !mb.HasCtxs {
		return nil, errNoContexts
	}
	return tr.Enc.Encode(t, &mb.Ctxs[i]), nil
}

// encodeInference samples a context for vs (ContextFn or a per-call
// fixed-seed inference stream) and encodes it; used by Embed/Score/
// EmbedAll. All state is call-local — a fresh Context and a fresh Rng
// seeded with inferenceSeed — so concurrent callers never share buffers
// or streams, and the same vs always samples the same context.
func (tr *LinkTrainer) encodeInference(t *nn.Tape, vs []graph.ID) (*nn.Node, *sampling.Context, error) {
	if tr.ContextFn != nil {
		ctx, err := tr.ContextFn(vs)
		if err != nil {
			return nil, nil, err
		}
		return tr.Enc.Encode(t, ctx), ctx, nil
	}
	ctx := new(sampling.Context)
	if err := tr.nbr.SampleInto(ctx, tr.EdgeType, vs, tr.HopNums, sampling.NewRng(inferenceSeed)); err != nil {
		return nil, nil, err
	}
	return tr.Enc.Encode(t, ctx), ctx, nil
}

// Embed encodes vertices for inference (no gradient is consumed). Safe for
// concurrent callers when ContextFn is nil (or the ContextFn itself is
// goroutine-safe), and deterministic: the same vs yield the same rows.
// Inference must not overlap a training Step — the encoder's feature
// source may hold per-step prefetch state.
func (tr *LinkTrainer) Embed(vs []graph.ID) (*tensor.Matrix, error) {
	m, _, err := tr.EmbedCtx(vs)
	return m, err
}

// EmbedCtx is Embed plus the sampled neighborhood context the embeddings
// were computed from. The context is freshly allocated per call and owned
// by the caller; a serving tier uses it to register each input vertex's
// sampled dependency set for cache invalidation.
func (tr *LinkTrainer) EmbedCtx(vs []graph.ID) (*tensor.Matrix, *sampling.Context, error) {
	t := nn.NewTape()
	h, ctx, err := tr.encodeInference(t, vs)
	if err != nil {
		return nil, nil, err
	}
	return h.Val.Clone(), ctx, nil
}

// Score returns the dot-product link score of (u, v). Safe for concurrent
// callers under the same conditions as Embed.
func (tr *LinkTrainer) Score(u, v graph.ID) (float64, error) {
	m, err := tr.Embed([]graph.ID{u, v})
	if err != nil {
		return 0, err
	}
	s := 0.0
	for j := 0; j < m.Cols; j++ {
		s += m.At(0, j) * m.At(1, j)
	}
	return s, nil
}

// EmbedAll encodes every vertex in id order (n x d); used by evaluation and
// by the export tooling. Safe for concurrent callers under the same
// conditions as Embed.
func (tr *LinkTrainer) EmbedAll() (*tensor.Matrix, error) {
	n := tr.Env.NumVertices()
	out := tensor.New(n, tr.Enc.OutDim())
	const chunk = 256
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		vs := make([]graph.ID, hi-lo)
		for i := range vs {
			vs[i] = graph.ID(lo + i)
		}
		m, err := tr.Embed(vs)
		if err != nil {
			return nil, err
		}
		for i := 0; i < m.Rows; i++ {
			copy(out.Row(lo+i), m.Row(i))
		}
	}
	return out, nil
}
