package core

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

// TrainEnv supplies the training-loop inputs that are not neighbor
// expansions: positive edge batches (TRAVERSE), the negative candidate pool
// with raw positive-occurrence counts (NEGATIVE applies the unigram^0.75
// smoothing itself), and the size of the vertex universe. A local graph and
// a distributed cluster client both satisfy it, which is what decouples the
// trainer from *graph.Graph.
type TrainEnv interface {
	// SampleEdges draws n edges of type t uniformly over the edge set.
	SampleEdges(t graph.EdgeType, n int) ([]graph.Edge, error)
	// NegativePool returns negative candidates for edge type t with their
	// unnormalized positive counts (in-degrees).
	NegativePool(t graph.EdgeType) (cands []graph.ID, counts []float64, err error)
	// NumVertices reports the vertex universe size (IDs are dense).
	NumVertices() int
}

// LocalEnv adapts an in-memory graph to TrainEnv.
type LocalEnv struct {
	G    *graph.Graph
	trav *sampling.Traverse
}

// NewLocalEnv creates the local-graph trainer environment.
func NewLocalEnv(g *graph.Graph, rng *rand.Rand) *LocalEnv {
	return &LocalEnv{G: g, trav: sampling.NewTraverse(g, rng)}
}

// SampleEdges implements TrainEnv.
func (e *LocalEnv) SampleEdges(t graph.EdgeType, n int) ([]graph.Edge, error) {
	return e.trav.SampleEdges(t, n), nil
}

// NegativePool implements TrainEnv.
func (e *LocalEnv) NegativePool(t graph.EdgeType) ([]graph.ID, []float64, error) {
	cands, counts := sampling.NegativePoolOf(e.G, t)
	return cands, counts, nil
}

// NumVertices implements TrainEnv.
func (e *LocalEnv) NumVertices() int { return e.G.NumVertices() }

// LinkTrainer trains an Encoder on unsupervised link prediction with
// negative sampling: edges of the target type are positives, NEGATIVE
// sampling provides negatives, and the score of a pair is the dot product
// of their encoded embeddings. This is the training loop that Sections 3.3
// and 4.1 sketch (TRAVERSE batch -> NEIGHBORHOOD context -> NEGATIVE
// samples -> AGGREGATE/COMBINE forward -> backward).
//
// The trainer never touches a graph directly: neighbor expansion goes
// through the batch-first sampling.Source seam and everything else through
// TrainEnv, so the same loop drives a local graph or live RPC shards.
type LinkTrainer struct {
	Env      TrainEnv
	Src      sampling.Source
	Enc      *Encoder
	EdgeType graph.EdgeType
	HopNums  []int
	Batch    int
	NegK     int
	Opt      nn.Optimizer
	Rng      *rand.Rand

	// ContextFn, when non-nil, overrides NEIGHBORHOOD sampling (FastGCN's
	// layer-wise sampling swaps the SAMPLE strategy this way).
	ContextFn func(vs []graph.ID) (*sampling.Context, error)

	nbr *sampling.Neighborhood
	neg *sampling.Negative

	// Steady-state sampling state: Step encodes three batches (src, dst,
	// negatives) on one tape, and the tape's backward pass still references
	// each context's layers, so the reusable contexts rotate with period 3;
	// the layers of one encode are never overwritten before Backward runs.
	sctx [3]sampling.Context
	nenc int
	srng *sampling.Rng
}

// TrainerConfig bundles LinkTrainer construction options.
type TrainerConfig struct {
	EdgeType graph.EdgeType
	HopNums  []int
	Batch    int
	NegK     int
	LR       float64
}

// DefaultTrainerConfig returns sensible defaults for the laptop-scale
// benchmarks.
func DefaultTrainerConfig() TrainerConfig {
	return TrainerConfig{HopNums: []int{5, 3}, Batch: 64, NegK: 4, LR: 0.01}
}

// NewLinkTrainer assembles the trainer over a local in-memory graph.
func NewLinkTrainer(g *graph.Graph, enc *Encoder, cfg TrainerConfig, rng *rand.Rand) *LinkTrainer {
	tr, err := NewLinkTrainerOver(NewLocalEnv(g, rng), sampling.NewGraphSource(g), enc, cfg, rng)
	if err != nil {
		// LocalEnv never fails; keep the historical infallible signature.
		panic(err)
	}
	return tr
}

// NewLinkTrainerOver assembles the trainer over any neighbor Source and
// TrainEnv pair — the seam that lets distributed GraphSAGE training run on
// live RPC shards.
func NewLinkTrainerOver(env TrainEnv, src sampling.Source, enc *Encoder, cfg TrainerConfig, rng *rand.Rand) (*LinkTrainer, error) {
	cands, counts, err := env.NegativePool(cfg.EdgeType)
	if err != nil {
		return nil, err
	}
	return &LinkTrainer{
		Env: env, Src: src, Enc: enc, EdgeType: cfg.EdgeType, HopNums: cfg.HopNums,
		Batch: cfg.Batch, NegK: cfg.NegK,
		Opt: nn.NewAdam(cfg.LR), Rng: rng,
		nbr: sampling.NewNeighborhood(src, rng),
		neg: sampling.NewNegativeFromPool(cands, sampling.UnigramWeights(counts), rng),
	}, nil
}

// Step runs one mini-batch and returns the loss.
func (tr *LinkTrainer) Step() (float64, error) {
	edges, err := tr.Env.SampleEdges(tr.EdgeType, tr.Batch)
	if err != nil {
		return 0, err
	}
	src := make([]graph.ID, len(edges))
	dst := make([]graph.ID, len(edges))
	for i, e := range edges {
		src[i] = e.Src
		dst[i] = e.Dst
	}
	negs := tr.neg.Sample(src, tr.NegK)

	t := nn.NewTape()
	hs, err := tr.encode(t, src)
	if err != nil {
		return 0, err
	}
	hd, err := tr.encode(t, dst)
	if err != nil {
		return 0, err
	}
	hn, err := tr.encode(t, negs)
	if err != nil {
		return 0, err
	}

	// Repeat each source NegK times to align with its negatives.
	rep := make([]int, len(negs))
	for i := range rep {
		rep[i] = i / tr.NegK
	}
	hsRep := t.Gather(hs, rep)

	pos := t.RowDot(hs, hd)
	neg := t.RowDot(hsRep, hn)
	loss := t.NegSamplingLoss(pos, neg)
	t.Backward(loss)

	params := tr.Enc.Params()
	nn.ClipGrad(params, 5.0)
	tr.Opt.Step(params)
	return loss.Val.Data[0], nil
}

// Train runs n steps and returns per-step losses.
func (tr *LinkTrainer) Train(steps int) ([]float64, error) {
	losses := make([]float64, steps)
	for i := range losses {
		l, err := tr.Step()
		if err != nil {
			return nil, err
		}
		losses[i] = l
	}
	return losses, nil
}

func (tr *LinkTrainer) encode(t *nn.Tape, vs []graph.ID) (*nn.Node, error) {
	var ctx *sampling.Context
	if tr.ContextFn != nil {
		c, err := tr.ContextFn(vs)
		if err != nil {
			return nil, err
		}
		ctx = c
	} else {
		if tr.srng == nil {
			tr.srng = sampling.NewRng(uint64(tr.Rng.Int63()))
		}
		ctx = &tr.sctx[tr.nenc%len(tr.sctx)]
		tr.nenc++
		if err := tr.nbr.SampleInto(ctx, tr.EdgeType, vs, tr.HopNums, tr.srng); err != nil {
			return nil, err
		}
	}
	return tr.Enc.Encode(t, ctx), nil
}

// Embed encodes vertices for inference (no gradient is consumed).
func (tr *LinkTrainer) Embed(vs []graph.ID) (*tensor.Matrix, error) {
	t := nn.NewTape()
	h, err := tr.encode(t, vs)
	if err != nil {
		return nil, err
	}
	return h.Val.Clone(), nil
}

// Score returns the dot-product link score of (u, v).
func (tr *LinkTrainer) Score(u, v graph.ID) (float64, error) {
	m, err := tr.Embed([]graph.ID{u, v})
	if err != nil {
		return 0, err
	}
	s := 0.0
	for j := 0; j < m.Cols; j++ {
		s += m.At(0, j) * m.At(1, j)
	}
	return s, nil
}

// EmbedAll encodes every vertex in id order (n x d); used by evaluation and
// by the export tooling.
func (tr *LinkTrainer) EmbedAll() (*tensor.Matrix, error) {
	n := tr.Env.NumVertices()
	out := tensor.New(n, tr.Enc.OutDim())
	const chunk = 256
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		vs := make([]graph.ID, hi-lo)
		for i := range vs {
			vs[i] = graph.ID(lo + i)
		}
		m, err := tr.Embed(vs)
		if err != nil {
			return nil, err
		}
		for i := 0; i < m.Rows; i++ {
			copy(out.Row(lo+i), m.Row(i))
		}
	}
	return out, nil
}
