package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/operator"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

func newEncoder(g *graph.Graph, feat FeatureSource, dims []int, materialize bool, rng *rand.Rand) *Encoder {
	e := &Encoder{Features: feat, Materialize: materialize, Normalize: true}
	in := feat.Dim()
	for k, out := range dims {
		e.Agg = append(e.Agg, operator.NewMeanAggregator("agg", in, out, rng))
		e.Comb = append(e.Comb, operator.NewConcatCombiner("comb", in, out, out, rng))
		_ = k
		in = out
	}
	return e
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.ID(v), graph.ID((v+1)%n), 0, 1)
	}
	return b.Finalize()
}

func TestAttrFeaturesPadTruncate(t *testing.T) {
	s := graph.MustSchema([]string{"a", "b"}, []string{"e"})
	b := graph.NewBuilder(s, true)
	v0 := b.AddVertex(0, []float64{1, 2, 3, 4})
	v1 := b.AddVertex(1, []float64{5})
	b.AddEdge(v0, v1, 0, 1)
	g := b.Finalize()
	f := NewAttrFeatures(g, 2)
	tp := nn.NewTape()
	rows := f.Rows(tp, []graph.ID{v0, v1})
	if rows.Val.At(0, 0) != 1 || rows.Val.At(0, 1) != 2 {
		t.Fatalf("truncate: %v", rows.Val.Row(0))
	}
	if rows.Val.At(1, 0) != 5 || rows.Val.At(1, 1) != 0 {
		t.Fatalf("pad: %v", rows.Val.Row(1))
	}
	if f.Params() != nil {
		t.Fatal("attr features must be static")
	}
}

func TestTableFeaturesTrainable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewTableFeatures("emb", 4, 3, rng)
	if len(f.Params()) != 1 {
		t.Fatal("table features must expose a parameter")
	}
	tp := nn.NewTape()
	rows := f.Rows(tp, []graph.ID{2, 2})
	loss := tp.MeanAll(rows)
	tp.Backward(loss)
	// Row 2 was used twice, so its grad must be nonzero; row 0 untouched.
	if f.Emb.Grad.At(2, 0) == 0 {
		t.Fatal("used row has zero grad")
	}
	if f.Emb.Grad.At(0, 0) != 0 {
		t.Fatal("unused row has grad")
	}
}

func TestConcatFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := cycleGraph(4)
	f := &ConcatFeatures{Srcs: []FeatureSource{
		NewAttrFeatures(g, 2),
		NewTableFeatures("emb", 4, 3, rng),
	}}
	if f.Dim() != 5 {
		t.Fatalf("dim = %d", f.Dim())
	}
	tp := nn.NewTape()
	rows := f.Rows(tp, []graph.ID{0, 1})
	if rows.Val.Rows != 2 || rows.Val.Cols != 5 {
		t.Fatalf("shape %dx%d", rows.Val.Rows, rows.Val.Cols)
	}
	if len(f.Params()) != 1 {
		t.Fatal("params must pass through")
	}
}

func TestEncoderShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := cycleGraph(10)
	feat := NewTableFeatures("emb", 10, 4, rng)
	enc := newEncoder(g, feat, []int{8, 6}, false, rng)
	if enc.OutDim() != 6 {
		t.Fatalf("out dim = %d", enc.OutDim())
	}
	nbr := sampling.NewNeighborhood(sampling.NewGraphSource(g), rng)
	ctx, err := nbr.Sample(0, []graph.ID{0, 3, 7}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	enc.NormalizeFinal = true // pure Algorithm 1: every hop normalized
	tp := nn.NewTape()
	h := enc.Encode(tp, ctx)
	if h.Val.Rows != 3 || h.Val.Cols != 6 {
		t.Fatalf("encode shape %dx%d", h.Val.Rows, h.Val.Cols)
	}
	// Normalized rows have unit norm.
	for i := 0; i < 3; i++ {
		s := 0.0
		for _, v := range h.Val.Row(i) {
			s += v * v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d norm² = %f", i, s)
		}
	}
}

// On a deterministic context (out-degree 1, width 1) the materialized and
// positional encoders must agree exactly.
func TestMaterializedMatchesPositional(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := cycleGraph(8)
	feat := NewTableFeatures("emb", 8, 4, rng)
	enc := newEncoder(g, feat, []int{5, 5}, false, rng)

	nbr := sampling.NewNeighborhood(sampling.NewGraphSource(g), rng)
	ctx, err := nbr.Sample(0, []graph.ID{0, 4}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}

	tp1 := nn.NewTape()
	enc.Materialize = false
	h1 := enc.Encode(tp1, ctx)

	tp2 := nn.NewTape()
	enc.Materialize = true
	h2 := enc.Encode(tp2, ctx)

	for i := range h1.Val.Data {
		if math.Abs(h1.Val.Data[i]-h2.Val.Data[i]) > 1e-9 {
			t.Fatalf("mismatch at %d: %f vs %f", i, h1.Val.Data[i], h2.Val.Data[i])
		}
	}
}

// The materialized encoder must also backprop into the feature table.
func TestMaterializedBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := cycleGraph(6)
	feat := NewTableFeatures("emb", 6, 4, rng)
	enc := newEncoder(g, feat, []int{4}, true, rng)
	nbr := sampling.NewNeighborhood(sampling.NewGraphSource(g), rng)
	ctx, _ := nbr.Sample(0, []graph.ID{0, 1, 2}, []int{2})

	tp := nn.NewTape()
	h := enc.Encode(tp, ctx)
	loss := tp.MeanAll(h)
	tp.Backward(loss)
	nonzero := false
	for _, v := range feat.Emb.Grad.Data {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("materialized path produced no feature gradients")
	}
}

func twoCommunityGraph(size int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(graph.SimpleSchema(), false)
	b.AddVertices(0, 2*size)
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for k := 0; k < 4; k++ {
				j := rng.Intn(size)
				if i != j {
					b.AddEdge(graph.ID(base+i), graph.ID(base+j), 0, 1)
				}
			}
		}
	}
	// Sparse cross links.
	for i := 0; i < size/4; i++ {
		b.AddEdge(graph.ID(rng.Intn(size)), graph.ID(size+rng.Intn(size)), 0, 1)
	}
	return b.Finalize()
}

func TestLinkTrainerLearnsCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := twoCommunityGraph(20, rng)
	feat := NewTableFeatures("emb", g.NumVertices(), 8, rng)
	enc := newEncoder(g, feat, []int{8}, true, rng)
	cfg := TrainerConfig{EdgeType: 0, HopNums: []int{3}, Batch: 32, NegK: 3, LR: 0.05}
	tr := NewLinkTrainer(g, enc, cfg, rng)

	losses, err := tr.Train(120)
	if err != nil {
		t.Fatal(err)
	}
	first := avg(losses[:10])
	last := avg(losses[len(losses)-10:])
	if last >= first {
		t.Fatalf("loss did not decrease: %f -> %f", first, last)
	}

	// Intra-community pairs should now score above cross-community pairs on
	// average.
	intra, inter := 0.0, 0.0
	for i := 0; i < 30; i++ {
		s1, err := tr.Score(graph.ID(rng.Intn(20)), graph.ID(rng.Intn(20)))
		if err != nil {
			t.Fatal(err)
		}
		s2, err := tr.Score(graph.ID(rng.Intn(20)), graph.ID(20+rng.Intn(20)))
		if err != nil {
			t.Fatal(err)
		}
		intra += s1
		inter += s2
	}
	if intra <= inter {
		t.Fatalf("intra %f <= inter %f", intra, inter)
	}
}

func TestEmbedAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := cycleGraph(12)
	feat := NewTableFeatures("emb", 12, 4, rng)
	enc := newEncoder(g, feat, []int{4}, true, rng)
	tr := NewLinkTrainer(g, enc, TrainerConfig{HopNums: []int{2}, Batch: 8, NegK: 2, LR: 0.01}, rng)
	m, err := tr.EmbedAll()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 12 || m.Cols != 4 {
		t.Fatalf("embed all shape %dx%d", m.Rows, m.Cols)
	}
	var zero tensor.Matrix
	_ = zero
	for i := 0; i < m.Rows; i++ {
		norm := 0.0
		for _, v := range m.Row(i) {
			norm += v * v
		}
		if norm == 0 {
			t.Fatalf("vertex %d has zero embedding", i)
		}
	}
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
