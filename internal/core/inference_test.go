package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

// newInferenceTrainer builds a small trained-enough trainer over a cycle
// graph for inference-path tests.
func newInferenceTrainer(t *testing.T) *LinkTrainer {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := cycleGraph(64)
	enc := newEncoder(g, NewTableFeatures("emb", g.NumVertices(), 8, rng), []int{8, 8}, false, rng)
	cfg := DefaultTrainerConfig()
	cfg.HopNums = []int{3, 2}
	cfg.Batch = 16
	tr := NewLinkTrainer(g, enc, cfg, rng)
	if _, err := tr.Train(5); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestEmbedConcurrent hammers Embed/Score/EmbedCtx from many goroutines on
// one trainer. Run under -race this proves the inference path shares no
// mutable state; the result check proves concurrent calls return exactly
// what sequential calls do (per-call fixed-seed sampling).
func TestEmbedConcurrent(t *testing.T) {
	tr := newInferenceTrainer(t)

	vs := []graph.ID{3, 17, 40}
	want, err := tr.Embed(vs)
	if err != nil {
		t.Fatal(err)
	}
	wantScore, err := tr.Score(5, 6)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch i % 3 {
				case 0:
					m, err := tr.Embed(vs)
					if err != nil {
						errs[w] = err
						return
					}
					for r := 0; r < m.Rows; r++ {
						for c := 0; c < m.Cols; c++ {
							if m.At(r, c) != want.At(r, c) {
								t.Errorf("worker %d: Embed[%d,%d] = %v, want %v", w, r, c, m.At(r, c), want.At(r, c))
								return
							}
						}
					}
				case 1:
					s, err := tr.Score(5, 6)
					if err != nil {
						errs[w] = err
						return
					}
					if s != wantScore {
						t.Errorf("worker %d: Score = %v, want %v", w, s, wantScore)
						return
					}
				case 2:
					m, ctx, err := tr.EmbedCtx([]graph.ID{graph.ID(w), graph.ID(w + 1)})
					if err != nil {
						errs[w] = err
						return
					}
					if m.Rows != 2 {
						t.Errorf("worker %d: EmbedCtx rows = %d", w, m.Rows)
						return
					}
					if ctx == nil || len(ctx.Layers) != len(tr.HopNums)+1 {
						t.Errorf("worker %d: EmbedCtx context layers = %v", w, ctx)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestEmbedCtxOwnership verifies each EmbedCtx call returns a distinct
// context whose layer 0 is the input batch — the serving tier walks the
// deeper layers to record per-vertex sampled dependencies.
func TestEmbedCtxOwnership(t *testing.T) {
	tr := newInferenceTrainer(t)
	_, c1, err := tr.EmbedCtx([]graph.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := tr.EmbedCtx([]graph.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("EmbedCtx returned a shared context")
	}
	if len(c1.Layers[0]) != 2 || c1.Layers[0][0] != 1 || c1.Layers[0][1] != 2 {
		t.Fatalf("layer 0 = %v, want input batch", c1.Layers[0])
	}
	// Deterministic sampling: identical inputs sample identical contexts.
	for h := range c1.Layers {
		if len(c1.Layers[h]) != len(c2.Layers[h]) {
			t.Fatalf("layer %d lengths differ: %d vs %d", h, len(c1.Layers[h]), len(c2.Layers[h]))
		}
		for i := range c1.Layers[h] {
			if c1.Layers[h][i] != c2.Layers[h][i] {
				t.Fatalf("layer %d slot %d: %d vs %d", h, i, c1.Layers[h][i], c2.Layers[h][i])
			}
		}
	}
}
