package core
