package core

import (
	"io"
	"sync/atomic"
)

// This file implements streaming ingest through the pipeline seam: a
// BatchSource that interleaves a caller-supplied update feed with training
// batches, so a model trains on a live, changing graph. The epoch machinery
// underneath keeps it sound: applied updates advance server epochs, the
// producer pins each batch to the snapshot current at its schedule time,
// and every completed batch is snapshot-consistent no matter how the feed
// and the training loop race.

// UpdateFeed supplies graph mutations to interleave with training. A
// cluster implementation routes queued ServeUpdate batches (edge
// insertions/removals and attribute rewrites) to the owning shards.
type UpdateFeed interface {
	// Apply applies up to max pending update batches to the backing store,
	// returning how many were applied (0 when the feed is idle). It runs on
	// the training goroutine between batches and must not block waiting for
	// new updates to arrive.
	Apply(max int) (int, error)
}

// StreamConfig tunes a StreamSource.
type StreamConfig struct {
	// Every applies pending updates before every Every-th batch (default 1:
	// before each batch).
	Every int
	// MaxPerTick bounds the update batches applied per tick (default 1).
	MaxPerTick int
}

// StreamSource is the live-training BatchSource: it drains an UpdateFeed
// between batches pulled from the inner source. With a prefetching inner
// Pipeline the feed's updates and the producer's pinned batches overlap
// freely — batches already scheduled keep reading their pinned epochs,
// batches scheduled after an update pin the new snapshot.
type StreamSource struct {
	inner BatchSource
	feed  UpdateFeed
	cfg   StreamConfig

	n       uint64
	applied atomic.Int64
}

// NewStreamSource wraps inner so that pending updates from feed are applied
// between training batches.
func NewStreamSource(inner BatchSource, feed UpdateFeed, cfg StreamConfig) *StreamSource {
	if cfg.Every < 1 {
		cfg.Every = 1
	}
	if cfg.MaxPerTick < 1 {
		cfg.MaxPerTick = 1
	}
	return &StreamSource{inner: inner, feed: feed, cfg: cfg}
}

// Next implements BatchSource: drain the feed's tick, then hand out the
// next training batch.
func (s *StreamSource) Next() (*MiniBatch, error) {
	if s.n%uint64(s.cfg.Every) == 0 {
		k, err := s.feed.Apply(s.cfg.MaxPerTick)
		if err != nil {
			return nil, err
		}
		s.applied.Add(int64(k))
	}
	s.n++
	return s.inner.Next()
}

// Recycle implements BatchSource.
func (s *StreamSource) Recycle(mb *MiniBatch) { s.inner.Recycle(mb) }

// Applied reports how many update batches the source has applied so far.
// Safe to call concurrently with training.
func (s *StreamSource) Applied() int64 { return s.applied.Load() }

// Close closes the inner source when it has a lifecycle (a Pipeline).
func (s *StreamSource) Close() error {
	if c, ok := s.inner.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
