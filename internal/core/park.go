package core

import (
	"errors"
	"time"
)

// Transient transport failures (a shard briefly unreachable, a retry budget
// exhausted during a restart window) must not kill a training run the way a
// real application error does: the pipeline parks the affected batch —
// bounded exponential backoff, releasing on Close — and replays it against
// the same pin and seeds, which the seam's seed-purity makes draw-exact.
// The cluster package cannot be imported from here, so classification goes
// through the error's own Transient() capability (cluster.ShardDownError
// implements it).

// transientErr reports whether err is a transient transport failure that
// parking-and-retrying may outwait.
func transientErr(err error) bool {
	var te interface{ Transient() bool }
	return errors.As(err, &te) && te.Transient()
}

const (
	parkBase = 2 * time.Millisecond
	parkCap  = 250 * time.Millisecond
)

// parkDelay is the capped exponential backoff for the n-th consecutive park
// of one batch.
func parkDelay(n int) time.Duration {
	d := parkBase << uint(min(n, 10))
	if d > parkCap {
		d = parkCap
	}
	return d
}

// syncParkLimit bounds how many times the synchronous (depth-0) source
// parks one batch before surfacing the error: it has no Close signal to
// watch, so the wait must be finite (~1 minute at the cap).
const syncParkLimit = 240
