package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/version"
)

// PipelineConfig tunes a prefetching Pipeline.
type PipelineConfig struct {
	// Depth is how many assembled batches may wait ahead of the consumer
	// (minimum 1). Depth 0 means "no pipeline" to the layers above; they
	// keep the trainer's synchronous source instead of building one.
	Depth int
	// Workers is the number of parallel assembly goroutines (default 2).
	// Each worker drives its own NEIGHBORHOOD expansion — on a cluster
	// source that means independent in-flight SampleNeighbors/Attrs RPC
	// windows per worker, bounded by Workers.
	Workers int
}

// ErrPipelineClosed is returned by Next after Close.
var ErrPipelineClosed = errors.New("core: pipeline closed")

// Pipeline is the prefetching BatchSource: it assembles up to Depth
// MiniBatches ahead of the consumer so that TRAVERSE, NEGATIVE and
// NEIGHBORHOOD sampling (and, on clusters, the batched Attrs prefetch) of
// future batches overlap the forward/backward pass of the current one —
// the produce/consume split of Section 4.1 that hides graph-service
// latency behind GNN compute.
//
// Determinism: a single scheduler goroutine performs every draw from the
// trainer's sequential random streams in batch order — the TRAVERSE batch,
// the negatives, and a snapshot of the NEIGHBORHOOD seed stream per encode
// (each hop of a batched source consumes exactly one seed, so the scheduler
// advances the stream without sampling anything). Workers then execute the
// expensive expansions from those snapshots, and a collector releases
// batches in sequence order. For sources with the BatchSampler capability
// (local graphs, cluster clients) the training losses are therefore
// bit-identical to the depth-0 SyncSource at every Depth and Workers
// setting — including with a replacing (LRU) neighbor cache: batched draws
// are slot-pure (sampling.SlotRng derives each slot's stream from the hop
// seed and the slot index alone), so cache warm-up timing, admission order
// across workers, and hit/miss patterns can shift RPC traffic but never
// the sampled values. Generic sources stay correct but draw from
// independently seeded per-encode forks of the stream (their expansions
// consume data-dependent draw counts, which a fixed skip cannot budget).
//
// Buffers: MiniBatches circulate through a fixed free list of
// Depth+Workers+1 batches, so steady-state production allocates nothing on
// the local path and the PR 1 zero-allocation sampling property survives
// the goroutine hop. Close stops all goroutines and waits for them; the
// consumer must not call Next concurrently with itself, and inference on
// the trainer must wait until the pipeline is closed or idle.
type Pipeline struct {
	tr       *LinkTrainer
	cfg      PipelineConfig
	prefetch PrefetchingFeatures
	// ps is the source's pinning capability (cluster clients). When
	// present, the scheduler stamps every batch with a pin of the snapshot
	// current at schedule time, every stage reads it, and eviction of a
	// leased epoch triggers a bounded re-pin-and-retry in the worker.
	ps sampling.PinSource

	free  chan *MiniBatch // recycled batches -> scheduler
	plans chan *MiniBatch // scheduler -> workers (edges+negs+seeds filled)
	done  chan *MiniBatch // workers -> collector (contexts+attrs filled)
	out   chan *MiniBatch // collector -> Next, in sequence order

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu  sync.Mutex
	err error

	met pipelineMetrics
}

// NewPipeline builds and starts a prefetching source over tr's environment
// and sampler stack. The trainer must not have trained yet (the pipeline
// takes over its random streams) and must not use a ContextFn — layer-wise
// sampling closures are not goroutine-safe and would race the scheduler on
// the trainer's rand.Rand; NewPipeline panics rather than letting that
// misuse surface as a data race far from its cause. Install the pipeline
// with tr.SetSource.
func NewPipeline(tr *LinkTrainer, cfg PipelineConfig) *Pipeline {
	if tr.ContextFn != nil {
		panic("core: Pipeline is incompatible with a ContextFn trainer (layer-wise samplers draw from the trainer's rand.Rand at encode time)")
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	total := cfg.Depth + cfg.Workers + 1
	p := &Pipeline{
		tr:       tr,
		cfg:      cfg,
		prefetch: tr.prefetcher(),
		free:     make(chan *MiniBatch, total),
		plans:    make(chan *MiniBatch, total),
		done:     make(chan *MiniBatch, total),
		out:      make(chan *MiniBatch, total),
		stop:     make(chan struct{}),
	}
	p.ps, _ = tr.Src.(sampling.PinSource)
	for i := 0; i < total; i++ {
		p.free <- &MiniBatch{}
	}
	p.wg.Add(cfg.Workers + 2)
	go p.scheduler()
	for w := 0; w < cfg.Workers; w++ {
		go p.worker()
	}
	go p.collector()
	return p
}

// scheduler owns the trainer's sequential random streams: it assembles the
// cheap, order-sensitive stages (TRAVERSE, NEGATIVE, per-encode seed
// snapshots) in batch order and hands the expensive rest to the workers.
// Exactly `total` batches circulate and every channel holds that many, so
// channel sends never block; only receives watch the stop signal.
func (p *Pipeline) scheduler() {
	defer p.wg.Done()
	tr := p.tr
	hops := len(tr.HopNums)
	_, batched := tr.Src.(sampling.BatchSampler)
	var srng *sampling.Rng
	seq := uint64(0)
	for {
		select {
		case <-p.stop:
			return
		case mb := <-p.free:
			start := time.Now()
			p.unpin(mb) // error batches returned directly may still hold one
			mb.reset()
			mb.seq = seq
			seq++
			if p.ps != nil {
				// Stamp the batch with the snapshot current at schedule
				// time: in steady state a refcount bump, after an observed
				// update one Lease round. Every stage of the batch — the
				// TRAVERSE below, the worker's expansions, the attribute
				// prefetch — reads this pin. Transient transport failures
				// park the scheduler (capped backoff, aborted by Close)
				// instead of killing the run: a restarting server comes
				// back on its own clock.
				parks := 0
				for {
					pin, err := p.ps.Pin()
					if err == nil {
						mb.Pin = pin
						break
					}
					if transientErr(err) {
						parks++
						if p.park(parks) {
							continue
						}
						err = ErrPipelineClosed
					}
					mb.err = err
					break
				}
				if mb.err != nil {
					p.met.schedule.Observe(int64(time.Since(start)))
					p.plans <- mb
					continue
				}
			}
			// The TRAVERSE stage reads the pin too; if the leased epoch was
			// lost server-side, re-pin and redraw (legal here: the scheduler
			// owns the sequential streams, so the redraws stay ordered). A
			// transient failure instead parks and replays against the SAME
			// pin and edge seed, consuming no extra draws.
			parks := 0
			for attempt := 0; ; attempt++ {
				err := tr.assembleEdges(mb)
				if err == nil {
					break
				}
				if transientErr(err) {
					parks++
					if p.park(parks) {
						p.met.replays.Inc()
						continue
					}
					mb.err = ErrPipelineClosed
					break
				}
				if p.ps == nil || attempt >= pinRetries || !version.IsUnavailable(err) {
					mb.err = err
					break
				}
				if perr := repinBatch(p.ps, mb); perr != nil {
					mb.err = perr
					break
				}
				p.met.replays.Inc()
				mb.Src, mb.Dst, mb.Negs = mb.Src[:0], mb.Dst[:0], mb.Negs[:0]
				mb.Epochs.Reset()
			}
			if mb.err != nil {
				p.met.schedule.Observe(int64(time.Since(start)))
				p.plans <- mb
				continue
			}
			if srng == nil {
				// Created lazily after the first batch's edge and negative
				// draws, mirroring the synchronous trainer, so the seed
				// stream matches depth 0 draw for draw.
				srng = sampling.NewRng(uint64(tr.Rng.Int63()))
			}
			if batched {
				// A batched source consumes exactly one seed per hop, so a
				// snapshot plus a fixed skip hands the worker precisely the
				// draws the synchronous source would have made.
				for e := range mb.seeds {
					mb.seeds[e] = srng.Snapshot()
					srng.Skip(hops)
				}
			} else {
				// Generic sources consume a data-dependent number of draws
				// per expansion; give each encode an independently seeded
				// fork so concurrent batches never replay overlapping
				// stream segments.
				for e := range mb.seeds {
					mb.seeds[e] = *sampling.NewRng(srng.Uint64())
				}
			}
			p.met.schedule.Observe(int64(time.Since(start)))
			p.plans <- mb
		}
	}
}

// worker executes the deterministic heavy stages of planned batches: the
// three NEIGHBORHOOD expansions from their scheduled seed snapshots, then
// the hop-0 attribute prefetch. Each worker samples through its own epoch
// view when the source has one, so the epochs a batch observed are recorded
// without cross-worker synchronization.
func (p *Pipeline) worker() {
	defer p.wg.Done()
	tr := p.tr
	src := tr.Src
	var view sampling.EpochView
	if es, ok := src.(sampling.EpochedSource); ok {
		view = es.EpochView()
		src = view
	}
	nbr := &sampling.Neighborhood{Src: src, ByWeight: tr.nbr.ByWeight}
	for {
		select {
		case <-p.stop:
			return
		case mb := <-p.plans:
			p.assemble(mb, nbr, view)
			p.done <- mb
		}
	}
}

// assemble runs the heavy stages, re-pinning and replaying the batch's
// reads (the scheduled seed snapshots make the draws exact) when a leased
// epoch turns out evicted — bounded, so a persistently failing shard still
// surfaces its error in sequence position.
func (p *Pipeline) assemble(mb *MiniBatch, nbr *sampling.Neighborhood, view sampling.EpochView) {
	if mb.err != nil {
		return
	}
	parks := 0
	for attempt := 0; ; attempt++ {
		err := p.assembleOnce(mb, nbr, view)
		if err == nil {
			return
		}
		if transientErr(err) {
			// A briefly unreachable shard (its retry budget exhausted): park
			// this batch and replay the expansions from the scheduled seed
			// snapshots — draw-exact, so the batch that eventually completes
			// is identical to a fault-free one. Close aborts the wait.
			parks++
			if p.park(parks) {
				p.met.replays.Inc()
				continue
			}
			mb.err = ErrPipelineClosed
			return
		}
		if p.ps == nil || attempt >= pinRetries || !version.IsUnavailable(err) {
			mb.err = err
			return
		}
		// The pin's lease was lost server-side (restart, forced eviction):
		// lease the current snapshot and replay the expansions and the
		// attribute prefetch from the scheduled seed snapshots. The
		// TRAVERSE positives were drawn at the dead epoch and cannot be
		// redrawn here (the scheduler owns that stream), so the batch's
		// span keeps the old stamp and gains the new one — it truthfully
		// reports Mixed(), and consumers that require strict snapshot
		// consistency can drop it. Only lost leases pay this; ordinary
		// churn never evicts a leased epoch.
		if perr := repinBatch(p.ps, mb); perr != nil {
			mb.err = perr
			return
		}
		p.met.replays.Inc()
	}
}

func (p *Pipeline) assembleOnce(mb *MiniBatch, nbr *sampling.Neighborhood, view sampling.EpochView) error {
	tr := p.tr
	if view != nil {
		view.SetPin(mb.Pin)
		view.ResetSpan()
	}
	sampleStart := time.Now()
	for e, vs := range [3][]graph.ID{mb.Src, mb.Dst, mb.Negs} {
		rng := mb.seeds[e]
		if err := nbr.SampleInto(&mb.Ctxs[e], tr.EdgeType, vs, tr.HopNums, &rng); err != nil {
			return err
		}
	}
	p.met.sample.Observe(int64(time.Since(sampleStart)))
	mb.HasCtxs = true
	if p.prefetch != nil {
		mb.pvs = mb.pvs[:0]
		for e := range mb.Ctxs {
			for _, layer := range mb.Ctxs[e].Layers {
				mb.pvs = append(mb.pvs, layer...)
			}
		}
		if mb.Attrs == nil {
			mb.Attrs = make(map[graph.ID][]float64)
		} else {
			for k := range mb.Attrs {
				delete(mb.Attrs, k)
			}
		}
		prefetchStart := time.Now()
		if err := p.prefetch.PrefetchAttrs(mb.pvs, mb.Pin, mb.Attrs); err != nil {
			return err
		}
		p.met.prefetch.Observe(int64(time.Since(prefetchStart)))
	}
	if view != nil {
		mb.Epochs.Merge(view.Span())
	}
	return nil
}

// park sleeps the n-th consecutive backoff delay for one parked batch,
// returning false when the pipeline closed during the wait (the caller then
// abandons the batch instead of spinning against a stopped pipeline).
func (p *Pipeline) park(n int) bool {
	p.met.parks.Inc()
	t := time.NewTimer(parkDelay(n))
	defer t.Stop()
	select {
	case <-p.stop:
		return false
	case <-t.C:
		return true
	}
}

// unpin releases mb's snapshot pin, if any.
func (p *Pipeline) unpin(mb *MiniBatch) {
	if mb.Pin != nil && p.ps != nil {
		p.ps.Unpin(mb.Pin)
	}
	mb.Pin = nil
}

// collector restores sequence order: workers finish out of order, the
// consumer must see batches exactly as the scheduler drew them.
func (p *Pipeline) collector() {
	defer p.wg.Done()
	next := uint64(0)
	pending := make(map[uint64]*MiniBatch, cap(p.out))
	for {
		select {
		case <-p.stop:
			// Park out-of-order batches back in a channel so Close's drain
			// can release their snapshot pins; every channel holds `total`
			// batches, so the sends cannot block.
			for _, m := range pending {
				p.out <- m
			}
			return
		case mb := <-p.done:
			pending[mb.seq] = mb
			for {
				m, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				p.out <- m
				next++
			}
		}
	}
}

// Next implements BatchSource. Errors are sticky: the first assembly error
// is returned (in sequence position) and every later call repeats it.
func (p *Pipeline) Next() (*MiniBatch, error) {
	p.mu.Lock()
	err := p.err
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	select {
	case <-p.stop:
		// Checked eagerly so a Close that has already returned wins over
		// batches still sitting in the output buffer.
		return nil, ErrPipelineClosed
	default:
	}
	wait := time.Now()
	select {
	case <-p.stop:
		return nil, ErrPipelineClosed
	case mb := <-p.out:
		p.met.nextWait.Observe(int64(time.Since(wait)))
		if mb.err != nil {
			err := mb.err
			p.mu.Lock()
			p.err = err
			p.mu.Unlock()
			mb.err = nil
			p.unpin(mb)
			p.free <- mb // ring member, never handed out: direct return
			return nil, err
		}
		mb.loaned = true
		mb.outAt = time.Now()
		return mb, nil
	}
}

// Recycle implements BatchSource, returning the batch to the free list for
// the scheduler to refill. Only batches currently checked out by Next are
// accepted: a double Recycle or a batch from another source is dropped,
// since admitting either would put a pointer into circulation twice (or
// grow the ring past its channel capacities) and corrupt the pipeline.
func (p *Pipeline) Recycle(mb *MiniBatch) {
	if mb == nil || !mb.loaned {
		return
	}
	p.met.consume.Observe(int64(time.Since(mb.outAt)))
	p.unpin(mb)
	mb.loaned = false
	p.free <- mb // loaned ring members always have a free slot reserved
}

// Close stops the producer goroutines, waits for them to exit, and releases
// the snapshot pins of every batch still in flight inside the pipeline.
// Batches already handed out stay valid (their pins release on Recycle);
// Next returns ErrPipelineClosed afterwards. Close is idempotent.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	if p.ps != nil {
		// All goroutines are stopped: every non-loaned batch sits in one of
		// the channels. Drain them, release pins, and put the batches back.
		var held []*MiniBatch
		for _, ch := range []chan *MiniBatch{p.free, p.plans, p.done, p.out} {
			for {
				select {
				case mb := <-ch:
					p.unpin(mb)
					held = append(held, mb)
				default:
				}
				if len(ch) == 0 {
					break
				}
			}
		}
		for _, mb := range held {
			p.free <- mb
		}
	}
	return nil
}
