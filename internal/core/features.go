// Package core implements the paper's primary contribution: the GNN
// framework of Algorithm 1 (SAMPLE -> AGGREGATE -> COMBINE per hop, with
// normalization), the mini-batch encoder with the intermediate-vector
// materialization cache of Section 3.4 (Table 5), feature sources, and a
// reusable link-prediction trainer that every algorithm in internal/algo
// builds on.
package core

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

// FeatureSource produces the hop-0 embeddings h⁰_v = x_v (Algorithm 1
// line 1) as tape nodes, so learnable sources (embedding tables)
// participate in backprop.
type FeatureSource interface {
	Dim() int
	// Rows returns a len(vs) x Dim node with one feature row per vertex.
	Rows(t *nn.Tape, vs []graph.ID) *nn.Node
	// Params returns trainable parameters (empty for static sources).
	Params() []*nn.Param
}

// PrefetchingFeatures is an optional FeatureSource capability for sources
// whose hop-0 rows live behind a network fetch (cluster attribute RPCs).
// A batch pipeline fetches the rows of a future batch on its worker
// goroutines (PrefetchAttrs, concurrent-safe) and the trainer installs them
// for the duration of the batch's encodes (ServePrefetched, called from the
// consuming goroutine only), so attribute latency overlaps compute instead
// of stalling Rows.
type PrefetchingFeatures interface {
	FeatureSource
	// PrefetchAttrs fetches the attribute rows of vs into the map (duplicate
	// vertices fetched once), reading the pinned snapshot when pin is
	// non-nil. Safe for concurrent use.
	PrefetchAttrs(vs []graph.ID, pin *sampling.Pin, into map[graph.ID][]float64) error
	// ServePrefetched installs rows for subsequent Rows calls; nil reverts
	// to direct fetching. Not concurrent-safe.
	ServePrefetched(rows map[graph.ID][]float64)
}

// FindPrefetcher returns the prefetching capability inside f, unwrapping
// ConcatFeatures compositions; nil when features are purely local.
func FindPrefetcher(f FeatureSource) PrefetchingFeatures {
	if p, ok := f.(PrefetchingFeatures); ok {
		return p
	}
	if c, ok := f.(*ConcatFeatures); ok {
		for _, s := range c.Srcs {
			if p := FindPrefetcher(s); p != nil {
				return p
			}
		}
	}
	return nil
}

// AttrFeatures serves raw vertex attributes, padded or truncated to a fixed
// dimension (heterogeneous vertex types have different attribute lengths).
type AttrFeatures struct {
	G *graph.Graph
	D int
}

// NewAttrFeatures creates a static attribute source with dimension d.
func NewAttrFeatures(g *graph.Graph, d int) *AttrFeatures { return &AttrFeatures{G: g, D: d} }

// Dim implements FeatureSource.
func (f *AttrFeatures) Dim() int { return f.D }

// Rows implements FeatureSource.
func (f *AttrFeatures) Rows(t *nn.Tape, vs []graph.ID) *nn.Node {
	m := tensor.New(len(vs), f.D)
	for i, v := range vs {
		attr := f.G.VertexAttr(v)
		row := m.Row(i)
		for j := 0; j < len(attr) && j < f.D; j++ {
			row[j] = attr[j]
		}
	}
	return t.Input(m)
}

// Params implements FeatureSource.
func (f *AttrFeatures) Params() []*nn.Param { return nil }

// TableFeatures is a learnable per-vertex embedding table (the transductive
// setting: DeepWalk-style free embeddings).
type TableFeatures struct {
	Emb *nn.Param
}

// NewTableFeatures allocates an n x d learnable table.
func NewTableFeatures(name string, n, d int, rng *rand.Rand) *TableFeatures {
	return &TableFeatures{Emb: nn.NewParamGaussian(name, n, d, 0.1, rng)}
}

// Dim implements FeatureSource.
func (f *TableFeatures) Dim() int { return f.Emb.Val.Cols }

// Rows implements FeatureSource.
func (f *TableFeatures) Rows(t *nn.Tape, vs []graph.ID) *nn.Node {
	idx := make([]int, len(vs))
	for i, v := range vs {
		idx[i] = int(v)
	}
	return t.Gather(t.Use(f.Emb), idx)
}

// Params implements FeatureSource.
func (f *TableFeatures) Params() []*nn.Param { return []*nn.Param{f.Emb} }

// ConcatFeatures concatenates several sources (e.g. attributes plus a
// learnable table, the inductive+transductive mix).
type ConcatFeatures struct {
	Srcs []FeatureSource
}

// Dim implements FeatureSource.
func (f *ConcatFeatures) Dim() int {
	d := 0
	for _, s := range f.Srcs {
		d += s.Dim()
	}
	return d
}

// Rows implements FeatureSource.
func (f *ConcatFeatures) Rows(t *nn.Tape, vs []graph.ID) *nn.Node {
	parts := make([]*nn.Node, len(f.Srcs))
	for i, s := range f.Srcs {
		parts[i] = s.Rows(t, vs)
	}
	return t.Concat(parts...)
}

// Params implements FeatureSource.
func (f *ConcatFeatures) Params() []*nn.Param {
	var ps []*nn.Param
	for _, s := range f.Srcs {
		ps = append(ps, s.Params()...)
	}
	return ps
}
