package core

import (
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/operator"
	"repro/internal/sampling"
)

// Encoder runs Algorithm 1 over a sampled multi-hop context: hop k applies
// AGGREGATE to the (k-1)-hop embeddings of each vertex's sampled neighbors,
// COMBINE merges with the vertex's own (k-1)-hop embedding, and rows are
// L2-normalized (line 7). Hop counts and widths come from the context; one
// Aggregator/Combiner pair per hop.
type Encoder struct {
	Features FeatureSource
	Agg      []operator.Aggregator
	Comb     []operator.Combiner

	// Materialize enables the Section 3.4 optimization: intermediate
	// vectors ĥ^(k) are computed once per distinct vertex in the mini-batch
	// and shared across every occurrence (sampled hubs appear many times).
	// Disabled, each occurrence recomputes its subtree — the baseline
	// measured in Table 5.
	Materialize bool

	// Normalize applies row L2 normalization after every intermediate hop
	// (Algorithm 1 line 7). The final hop is left unnormalized so the
	// dot-product training logits are unbounded; normalizing the output
	// caps logits at [-1, 1] and starves the negative-sampling gradient.
	// Set NormalizeFinal to normalize the last hop too (pure Algorithm 1).
	Normalize      bool
	NormalizeFinal bool
}

// Params returns all trainable parameters of the encoder.
func (e *Encoder) Params() []*nn.Param {
	ps := append([]*nn.Param(nil), e.Features.Params()...)
	for _, a := range e.Agg {
		ps = append(ps, a.Params()...)
	}
	for _, c := range e.Comb {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// OutDim returns the final embedding dimension.
func (e *Encoder) OutDim() int {
	if len(e.Comb) == 0 {
		return e.Features.Dim()
	}
	return e.Comb[len(e.Comb)-1].OutDim()
}

func (e *Encoder) normalizeHop(k, kmax int) bool {
	if !e.Normalize {
		return false
	}
	return k < kmax || e.NormalizeFinal
}

// Encode computes embeddings for ctx.Layers[0] (B x OutDim).
func (e *Encoder) Encode(t *nn.Tape, ctx *sampling.Context) *nn.Node {
	if e.Materialize {
		return e.encodeMaterialized(t, ctx)
	}
	return e.encodePositional(t, ctx)
}

// encodePositional is the straightforward Algorithm 1 evaluation: one row
// per occurrence in each context layer, recomputing repeated vertices.
func (e *Encoder) encodePositional(t *nn.Tape, ctx *sampling.Context) *nn.Node {
	L := len(ctx.Layers)
	kmax := L - 1

	// h[h] holds the current-hop embeddings of layer h's occurrences.
	h := make([]*nn.Node, L)
	for l := 0; l < L; l++ {
		h[l] = e.Features.Rows(t, ctx.Layers[l])
	}
	for k := 1; k <= kmax; k++ {
		next := make([]*nn.Node, L-k)
		for l := 0; l < L-k; l++ {
			agg := e.Agg[k-1].Aggregate(t, h[l+1], ctx.HopNums[l])
			comb := e.Comb[k-1].Combine(t, h[l], agg)
			if e.normalizeHop(k, kmax) {
				comb = t.RowL2Normalize(comb)
			}
			next[l] = comb
		}
		h = next
	}
	return h[0]
}

// encodeMaterialized shares intermediate vectors among repeated vertices:
// per hop, each distinct vertex of the mini-batch is computed once into a
// compact matrix ĥ^(k) and every occurrence gathers its row (Section 3.4).
func (e *Encoder) encodeMaterialized(t *nn.Tape, ctx *sampling.Context) *nn.Node {
	L := len(ctx.Layers)
	kmax := L - 1

	// Distinct vertex table across all layers, with each vertex's sampled
	// neighbor group (first occurrence wins, per the shared-neighbors
	// approximation).
	rowOf := make(map[graph.ID]int)
	var distinct []graph.ID
	groupOf := make(map[graph.ID][]graph.ID) // sampled neighbors of v
	for l := 0; l < L; l++ {
		for i, v := range ctx.Layers[l] {
			if _, ok := rowOf[v]; !ok {
				rowOf[v] = len(distinct)
				distinct = append(distinct, v)
			}
			if l < L-1 {
				if _, ok := groupOf[v]; !ok {
					groupOf[v] = ctx.NeighborsOf(l, i)
				}
			}
		}
	}

	// ĥ^(0): features of all distinct vertices.
	hhat := e.Features.Rows(t, distinct)
	curRow := rowOf

	for k := 1; k <= kmax; k++ {
		// Vertices still needed at hop k: layers 0..L-1-k.
		needRow := make(map[graph.ID]int)
		var need []graph.ID
		for l := 0; l <= L-1-k; l++ {
			for _, v := range ctx.Layers[l] {
				if _, ok := needRow[v]; !ok {
					needRow[v] = len(need)
					need = append(need, v)
				}
			}
		}
		width := ctx.HopNums[0]
		// Flatten each needed vertex's neighbor group rows in ĥ^(k-1).
		flat := make([]int, 0, len(need)*width)
		selfIdx := make([]int, len(need))
		for i, v := range need {
			selfIdx[i] = curRow[v]
			grp := groupOf[v]
			if len(grp) > width {
				grp = grp[:width] // unify group width across layers
			}
			for _, u := range grp {
				flat = append(flat, curRow[u])
			}
			// Pad groups narrower than width (different hop widths) with
			// the vertex itself so MeanGroups stays aligned.
			for pad := len(grp); pad < width; pad++ {
				flat = append(flat, curRow[v])
			}
		}
		neigh := t.Gather(hhat, flat)
		self := t.Gather(hhat, selfIdx)
		agg := e.Agg[k-1].Aggregate(t, neigh, width)
		comb := e.Comb[k-1].Combine(t, self, agg)
		if e.normalizeHop(k, kmax) {
			comb = t.RowL2Normalize(comb)
		}
		hhat = comb
		curRow = needRow
	}

	// Expand to the batch order.
	idx := make([]int, len(ctx.Layers[0]))
	for i, v := range ctx.Layers[0] {
		idx[i] = curRow[v]
	}
	return t.Gather(hhat, idx)
}
