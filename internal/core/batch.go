package core

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// MiniBatch is one fully assembled training batch: the positive edge
// endpoints from TRAVERSE, the aligned negatives, the three sampled
// NEIGHBORHOOD contexts, and (on clusters) prefetched hop-0 attribute rows.
// Decoupling its production from its consumption is what lets a Pipeline
// overlap graph-service latency with the GNN forward/backward pass
// (Section 4.1's sampling/training overlap).
//
// MiniBatches are recycled: sources hand them out from Next and take them
// back through Recycle, reusing every internal buffer, so steady-state
// batch assembly over a local graph performs no per-batch allocation.
type MiniBatch struct {
	// Src and Dst are the endpoints of the TRAVERSE edge batch; Negs holds
	// NegK negatives per source vertex, flattened batch-major.
	Src, Dst, Negs []graph.ID
	// Ctxs are the sampled multi-hop contexts of Src, Dst and Negs, in that
	// order, valid when HasCtxs. Trainers with a ContextFn (layer-wise
	// samplers) leave them empty and sample at encode time instead.
	Ctxs    [3]sampling.Context
	HasCtxs bool
	// Attrs maps every vertex appearing in the contexts to its prefetched
	// hop-0 attribute row; nil when the feature source is local (attributes
	// are then read at encode time, as before).
	Attrs map[graph.ID][]float64
	// Epochs spans the server update epochs observed while assembling the
	// batch. Epochs.Mixed() flags a batch that straddles a dynamic update
	// (or shards at different update generations) — the detection half of
	// snapshot-consistent training.
	Epochs sampling.EpochSpan

	seq    uint64
	err    error
	loaned bool // checked out to the consumer by Pipeline.Next
	edges  []graph.Edge
	seeds  [3]sampling.Rng
	pvs    []graph.ID // prefetch vertex-list scratch
}

// reset clears the batch for reuse, keeping every buffer.
func (mb *MiniBatch) reset() {
	mb.Src = mb.Src[:0]
	mb.Dst = mb.Dst[:0]
	mb.Negs = mb.Negs[:0]
	mb.HasCtxs = false
	mb.Epochs.Reset()
	mb.err = nil
	mb.edges = mb.edges[:0]
}

// BatchSource produces MiniBatches for a LinkTrainer. It is the seam
// between batch production and consumption: SyncSource assembles each batch
// inline on the calling goroutine (depth 0 — draw-for-draw identical to the
// pre-pipeline trainer), while Pipeline assembles batches ahead of the
// consumer on worker goroutines. Every future asynchronous training feature
// (epoch pinning, streaming ingest) plugs in behind this interface.
//
// The contract is strict alternation per consumer: call Next, consume the
// batch, hand it back with Recycle, repeat. A recycled batch's buffers are
// reused; the consumer must not retain references past Recycle.
type BatchSource interface {
	// Next returns the next assembled batch.
	Next() (*MiniBatch, error)
	// Recycle returns a batch obtained from Next to the source's free list.
	Recycle(*MiniBatch)
}

// BatchEnv is an optional TrainEnv capability used by batch sources:
// TRAVERSE batches appended into a caller-owned buffer (allocation-free in
// steady state) with the update epochs of the serving shards recorded into
// span. Environments without it fall back to SampleEdges, unstamped.
type BatchEnv interface {
	AppendEdges(dst []graph.Edge, t graph.EdgeType, n int, span *sampling.EpochSpan) ([]graph.Edge, error)
}

// errNoContexts is returned when a trainer without a ContextFn receives a
// batch whose contexts were never sampled.
var errNoContexts = errors.New("core: mini-batch carries no sampled contexts")

// assembleEdges fills mb.Src/Dst/Negs from one TRAVERSE batch plus aligned
// negatives, recording reply epochs into mb.Epochs when the environment
// stamps them. It draws from tr.Rng (via the environment and the negative
// sampler) and must therefore run on the goroutine that owns that stream:
// the caller for SyncSource, the scheduler for Pipeline.
func (tr *LinkTrainer) assembleEdges(mb *MiniBatch) error {
	var edges []graph.Edge
	var err error
	if be, ok := tr.Env.(BatchEnv); ok {
		edges, err = be.AppendEdges(mb.edges[:0], tr.EdgeType, tr.Batch, &mb.Epochs)
	} else {
		edges, err = tr.Env.SampleEdges(tr.EdgeType, tr.Batch)
	}
	if err != nil {
		return err
	}
	mb.edges = edges
	for _, e := range edges {
		mb.Src = append(mb.Src, e.Src)
		mb.Dst = append(mb.Dst, e.Dst)
	}
	mb.Negs = tr.neg.AppendSample(mb.Negs[:0], mb.Src, tr.NegK)
	return nil
}

// SyncSource is the depth-0 BatchSource: one batch assembled inline per
// Next call, on the caller's goroutine, using the trainer's own samplers
// and random streams. For a fixed seed it reproduces the pre-pipeline
// trainer's training losses bit for bit — the reference implementation the
// Pipeline is validated against.
type SyncSource struct {
	tr   *LinkTrainer
	mb   MiniBatch
	nbr  *sampling.Neighborhood
	view sampling.EpochView
}

// NewSyncSource creates the synchronous batch source for tr. A trainer
// installs one automatically on first use; constructing one explicitly is
// only needed to drive Step by hand. Epoch-stamped sources are sampled
// through an epoch view, so depth-0 batches record the epochs of their hop
// expansions exactly like pipelined ones.
func NewSyncSource(tr *LinkTrainer) *SyncSource {
	s := &SyncSource{tr: tr}
	src := tr.Src
	if es, ok := src.(sampling.EpochedSource); ok {
		s.view = es.EpochView()
		src = s.view
	}
	s.nbr = &sampling.Neighborhood{Src: src, ByWeight: tr.nbr.ByWeight}
	return s
}

// Next implements BatchSource. The batch is owned by the source and reused
// across calls; it is valid until the next Next call.
func (s *SyncSource) Next() (*MiniBatch, error) {
	tr := s.tr
	mb := &s.mb
	mb.reset()
	if s.view != nil {
		s.view.ResetSpan()
	}
	if err := tr.assembleEdges(mb); err != nil {
		return nil, err
	}
	if tr.ContextFn == nil {
		tr.ensureSrng()
		for i, vs := range [3][]graph.ID{mb.Src, mb.Dst, mb.Negs} {
			if err := s.nbr.SampleInto(&mb.Ctxs[i], tr.EdgeType, vs, tr.HopNums, tr.srng); err != nil {
				return nil, err
			}
		}
		mb.HasCtxs = true
	}
	if s.view != nil {
		mb.Epochs.Merge(s.view.Span())
	}
	return mb, nil
}

// Recycle implements BatchSource; the sync source reuses its single batch
// in place, so there is nothing to return.
func (s *SyncSource) Recycle(*MiniBatch) {}
