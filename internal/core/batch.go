package core

import (
	"errors"
	"time"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/version"
)

// MiniBatch is one fully assembled training batch: the positive edge
// endpoints from TRAVERSE, the aligned negatives, the three sampled
// NEIGHBORHOOD contexts, and (on clusters) prefetched hop-0 attribute rows.
// Decoupling its production from its consumption is what lets a Pipeline
// overlap graph-service latency with the GNN forward/backward pass
// (Section 4.1's sampling/training overlap).
//
// MiniBatches are recycled: sources hand them out from Next and take them
// back through Recycle, reusing every internal buffer, so steady-state
// batch assembly over a local graph performs no per-batch allocation.
type MiniBatch struct {
	// Src and Dst are the endpoints of the TRAVERSE edge batch; Negs holds
	// NegK negatives per source vertex, flattened batch-major.
	Src, Dst, Negs []graph.ID
	// Ctxs are the sampled multi-hop contexts of Src, Dst and Negs, in that
	// order, valid when HasCtxs. Trainers with a ContextFn (layer-wise
	// samplers) leave them empty and sample at encode time instead.
	Ctxs    [3]sampling.Context
	HasCtxs bool
	// Attrs maps every vertex appearing in the contexts to its prefetched
	// hop-0 attribute row; nil when the feature source is local (attributes
	// are then read at encode time, as before).
	Attrs map[graph.ID][]float64
	// Epochs spans the server update epochs observed while assembling the
	// batch. Epochs.Mixed() flags a batch that straddles a dynamic update
	// (or shards at different update generations). Batches assembled under
	// a Pin record the pin's single stamp, making Mixed() an invariant
	// rather than a detector: a completed pinned batch is
	// snapshot-consistent by construction.
	Epochs sampling.EpochSpan
	// Pin is the snapshot the batch was assembled against, stamped by the
	// producer at schedule time when the source supports pinning (cluster
	// clients); nil on local graphs. The source releases it on Recycle.
	Pin *sampling.Pin

	seq    uint64
	err    error
	loaned bool      // checked out to the consumer by Pipeline.Next
	outAt  time.Time // when Pipeline.Next handed the batch out (consume timing)
	edges  []graph.Edge
	seeds  [3]sampling.Rng
	pvs    []graph.ID // prefetch vertex-list scratch

	// edgeSeed is the batch's TRAVERSE seed, drawn exactly once per batch
	// from a SeededBatchEnv and reused across fault retries so a replayed
	// assembly consumes no extra stream draws (bit-identical losses under
	// transient faults).
	edgeSeed    uint64
	hasEdgeSeed bool
}

// reset clears the batch for reuse, keeping every buffer. The caller is
// responsible for releasing mb.Pin first.
func (mb *MiniBatch) reset() {
	mb.Src = mb.Src[:0]
	mb.Dst = mb.Dst[:0]
	mb.Negs = mb.Negs[:0]
	mb.HasCtxs = false
	mb.Epochs.Reset()
	mb.Pin = nil
	mb.err = nil
	mb.edges = mb.edges[:0]
	mb.hasEdgeSeed = false
}

// BatchSource produces MiniBatches for a LinkTrainer. It is the seam
// between batch production and consumption: SyncSource assembles each batch
// inline on the calling goroutine (depth 0 — draw-for-draw identical to the
// pre-pipeline trainer), while Pipeline assembles batches ahead of the
// consumer on worker goroutines. Every future asynchronous training feature
// (epoch pinning, streaming ingest) plugs in behind this interface.
//
// The contract is strict alternation per consumer: call Next, consume the
// batch, hand it back with Recycle, repeat. A recycled batch's buffers are
// reused; the consumer must not retain references past Recycle.
type BatchSource interface {
	// Next returns the next assembled batch.
	Next() (*MiniBatch, error)
	// Recycle returns a batch obtained from Next to the source's free list.
	Recycle(*MiniBatch)
}

// BatchEnv is an optional TrainEnv capability used by batch sources:
// TRAVERSE batches appended into a caller-owned buffer (allocation-free in
// steady state), read from the pinned snapshot when the batch carries one,
// with what the serving shards observed recorded into span. Environments
// without it fall back to SampleEdges, unstamped and unpinned.
type BatchEnv interface {
	AppendEdges(dst []graph.Edge, t graph.EdgeType, n int, pin *sampling.Pin, span *sampling.EpochSpan) ([]graph.Edge, error)
}

// SeededBatchEnv is an optional BatchEnv refinement for environments whose
// TRAVERSE draw is a pure function of an explicit seed (cluster clients).
// Batch sources draw EdgeSeed exactly once per batch and replay
// AppendEdgesSeeded with it on fault retries, so a retried TRAVERSE
// consumes no extra positions of the sequential edge-seed stream — without
// it, every retry would shift all subsequent draws and a fault-free run
// could never be reproduced bit for bit. Environments without the
// refinement (local graphs, whose draws cannot fail) keep the plain
// AppendEdges path.
type SeededBatchEnv interface {
	BatchEnv
	// EdgeSeed draws the next TRAVERSE seed from the sequential stream.
	EdgeSeed() uint64
	// AppendEdgesSeeded is AppendEdges driven by an explicit seed.
	AppendEdgesSeeded(dst []graph.Edge, t graph.EdgeType, n int, seed uint64, pin *sampling.Pin, span *sampling.EpochSpan) ([]graph.Edge, error)
}

// EpochedEnv is an optional TrainEnv capability reporting the newest update
// epoch the environment has observed across the backing store; trainers use
// it as the staleness clock for epoch-refreshed negative pools.
type EpochedEnv interface {
	ObservedEpoch() uint64
}

// errNoContexts is returned when a trainer without a ContextFn receives a
// batch whose contexts were never sampled.
var errNoContexts = errors.New("core: mini-batch carries no sampled contexts")

// assembleEdges fills mb.Src/Dst/Negs from one TRAVERSE batch plus aligned
// negatives, reading mb.Pin's snapshot when set and recording what the
// environment observed into mb.Epochs. It draws from tr.Rng (via the
// environment and the negative sampler) and must therefore run on the
// goroutine that owns that stream: the caller for SyncSource, the
// scheduler for Pipeline.
func (tr *LinkTrainer) assembleEdges(mb *MiniBatch) error {
	var edges []graph.Edge
	var err error
	if se, ok := tr.Env.(SeededBatchEnv); ok {
		// The seed is drawn once per batch and survives fault retries: a
		// replayed TRAVERSE re-reads the same draw instead of consuming a
		// fresh stream position.
		if !mb.hasEdgeSeed {
			mb.edgeSeed = se.EdgeSeed()
			mb.hasEdgeSeed = true
		}
		edges, err = se.AppendEdgesSeeded(mb.edges[:0], tr.EdgeType, tr.Batch, mb.edgeSeed, mb.Pin, &mb.Epochs)
	} else if be, ok := tr.Env.(BatchEnv); ok {
		edges, err = be.AppendEdges(mb.edges[:0], tr.EdgeType, tr.Batch, mb.Pin, &mb.Epochs)
	} else {
		edges, err = tr.Env.SampleEdges(tr.EdgeType, tr.Batch)
	}
	if err != nil {
		return err
	}
	// Refresh the negative pool before drawing negatives, never after: the
	// rebuild consumes zero rng draws, so doing it here keeps the negative
	// stream aligned draw for draw with a run that never refreshed.
	if err := tr.maybeRefreshNegatives(); err != nil {
		return err
	}
	mb.edges = edges
	for _, e := range edges {
		mb.Src = append(mb.Src, e.Src)
		mb.Dst = append(mb.Dst, e.Dst)
	}
	mb.Negs = tr.neg.AppendSample(mb.Negs[:0], mb.Src, tr.NegK)
	return nil
}

// pinRetries bounds how many times a batch is re-pinned and re-read after
// its leased epoch turns out evicted (a shard lost its lease table, e.g. a
// restart) before the error surfaces.
const pinRetries = 3

// SyncSource is the depth-0 BatchSource: one batch assembled inline per
// Next call, on the caller's goroutine, using the trainer's own samplers
// and random streams. For a fixed seed it reproduces the pre-pipeline
// trainer's training losses bit for bit — the reference implementation the
// Pipeline is validated against.
//
// Over a pinning source (cluster clients) every batch is stamped with the
// snapshot current when its assembly starts and reads it end to end, so
// depth-0 batches carry a single-valued epoch span exactly like pipelined
// ones.
type SyncSource struct {
	tr       *LinkTrainer
	mb       MiniBatch
	nbr      *sampling.Neighborhood
	view     sampling.EpochView
	ps       sampling.PinSource
	prefetch PrefetchingFeatures
}

// NewSyncSource creates the synchronous batch source for tr. A trainer
// installs one automatically on first use; constructing one explicitly is
// only needed to drive Step by hand. Epoch-stamped sources are sampled
// through an epoch view, so depth-0 batches record the epochs of their hop
// expansions exactly like pipelined ones.
func NewSyncSource(tr *LinkTrainer) *SyncSource {
	s := &SyncSource{tr: tr, prefetch: tr.prefetcher()}
	src := tr.Src
	s.ps, _ = src.(sampling.PinSource)
	if es, ok := src.(sampling.EpochedSource); ok {
		s.view = es.EpochView()
		src = s.view
	}
	s.nbr = &sampling.Neighborhood{Src: src, ByWeight: tr.nbr.ByWeight}
	return s
}

// Next implements BatchSource. The batch is owned by the source and reused
// across calls; it is valid until the next Next call.
func (s *SyncSource) Next() (*MiniBatch, error) {
	tr := s.tr
	mb := &s.mb
	s.release(mb) // in case the consumer skipped Recycle
	mb.reset()
	if s.ps != nil {
		pin, err := s.ps.Pin()
		if err != nil {
			return nil, err
		}
		mb.Pin = pin
	}
	if s.view != nil {
		s.view.SetPin(mb.Pin)
		s.view.ResetSpan()
	}
	// One attempt assembles the whole batch against mb.Pin's snapshot. A
	// lost lease (eviction) re-pins the current snapshot and re-assembles
	// everything — TRAVERSE included, which is legal here because the
	// caller owns the sequential streams — so a completed depth-0 batch is
	// always consistent at one epoch, even across retries. Transient
	// transport failures (retry budget exhausted against a briefly dead
	// shard) instead park the batch and replay it against the SAME pin and
	// seeds, consuming no extra draws.
	parks := 0
	for attempt := 0; ; attempt++ {
		var err error
		// A parked retry that already assembled its edge batch (the failure
		// was downstream, in expansion or prefetch) keeps it: negatives were
		// already drawn from the sequential stream and re-assembling would
		// double-draw them. Eviction retries reset Src below, forcing a full
		// re-assembly at the new epoch.
		if len(mb.Src) == 0 {
			err = tr.assembleEdges(mb)
		}
		if err == nil && tr.ContextFn == nil {
			tr.ensureSrng()
			err = s.expand(mb)
		}
		if err == nil && tr.ContextFn == nil && s.prefetch != nil && mb.Pin != nil {
			// Remote feature rows are fetched here, at the batch's pinned
			// epoch, so the encode reads the same snapshot as every other
			// stage (unpinned sources keep fetching lazily at encode time).
			err = s.prefetchAttrs(mb)
		}
		if err == nil {
			break
		}
		if transientErr(err) && parks < syncParkLimit {
			parks++
			time.Sleep(parkDelay(parks))
			if s.view != nil {
				s.view.ResetSpan()
			}
			continue
		}
		if s.ps == nil || attempt >= pinRetries || !version.IsUnavailable(err) {
			s.release(mb)
			return nil, err
		}
		if err := s.repin(mb); err != nil {
			return nil, err
		}
		mb.Src, mb.Dst, mb.Negs = mb.Src[:0], mb.Dst[:0], mb.Negs[:0]
	}
	if tr.ContextFn == nil {
		mb.HasCtxs = true
	}
	if s.view != nil {
		mb.Epochs.Merge(s.view.Span())
	}
	return mb, nil
}

// expand runs the three NEIGHBORHOOD expansions. Batched sources (one seed
// consumed per hop) draw from a snapshot of the seed stream and advance the
// real stream by exactly the consumed seeds only on success, so a failed
// attempt leaves the stream untouched for the retry; generic sources use
// the stream directly, since their consumption is data-dependent and
// cannot be replayed seed-exactly anyway.
func (s *SyncSource) expand(mb *MiniBatch) error {
	tr := s.tr
	if _, batched := s.nbr.Src.(sampling.BatchSampler); !batched {
		for i, vs := range [3][]graph.ID{mb.Src, mb.Dst, mb.Negs} {
			if err := s.nbr.SampleInto(&mb.Ctxs[i], tr.EdgeType, vs, tr.HopNums, tr.srng); err != nil {
				return err
			}
		}
		return nil
	}
	rng := tr.srng.Snapshot()
	for i, vs := range [3][]graph.ID{mb.Src, mb.Dst, mb.Negs} {
		if err := s.nbr.SampleInto(&mb.Ctxs[i], tr.EdgeType, vs, tr.HopNums, &rng); err != nil {
			return err
		}
	}
	tr.srng.Skip(3 * len(tr.HopNums))
	return nil
}

// prefetchAttrs fetches the hop-0 attribute rows of every context vertex at
// the batch's pinned epoch (mirroring the pipeline worker's prefetch).
func (s *SyncSource) prefetchAttrs(mb *MiniBatch) error {
	mb.pvs = mb.pvs[:0]
	for e := range mb.Ctxs {
		for _, layer := range mb.Ctxs[e].Layers {
			mb.pvs = append(mb.pvs, layer...)
		}
	}
	if mb.Attrs == nil {
		mb.Attrs = make(map[graph.ID][]float64)
	} else {
		for k := range mb.Attrs {
			delete(mb.Attrs, k)
		}
	}
	return s.prefetch.PrefetchAttrs(mb.pvs, mb.Pin, mb.Attrs)
}

// repinBatch swaps a batch's dead pin for a lease of the backend's current
// snapshot: the shared step of every eviction-retry path.
func repinBatch(ps sampling.PinSource, mb *MiniBatch) error {
	ps.Discard(mb.Pin)
	pin, err := ps.Pin()
	ps.Unpin(mb.Pin)
	mb.Pin = pin
	return err
}

// repin is repinBatch plus the sync source's span bookkeeping; the caller
// replays the batch's reads afterwards.
func (s *SyncSource) repin(mb *MiniBatch) error {
	if err := repinBatch(s.ps, mb); err != nil {
		return err
	}
	mb.Epochs.Reset()
	if s.view != nil {
		s.view.SetPin(mb.Pin)
		s.view.ResetSpan()
	}
	return nil
}

// release drops the batch's pin reference, if any.
func (s *SyncSource) release(mb *MiniBatch) {
	if mb.Pin != nil && s.ps != nil {
		s.ps.Unpin(mb.Pin)
	}
	mb.Pin = nil
}

// Recycle implements BatchSource; the sync source reuses its single batch
// in place, releasing only its snapshot pin.
func (s *SyncSource) Recycle(mb *MiniBatch) {
	if mb == &s.mb {
		s.release(mb)
	}
}
