package serve

import (
	"time"

	"repro/internal/obs"
)

// Serving-tier observability: the tier's existing atomic counters (the same
// ones Stats snapshots) are folded into a shared obs.Registry as gauges, and
// two always-on histograms time the request path — lookup is the caller-side
// EmbedBatch latency end to end (cache probe, coalescer wait, encoder flush),
// flush is one coalesced encoder round (dedup, chunked EmbedCtx calls,
// admission). Stats() is unchanged: the registry is a second read path over
// the same instruments, not a replacement. Recording costs one clock read
// plus one atomic add per EmbedBatch call and per flush.

// RegisterObs names the tier's instruments in r under serve.*: request-path
// latency histograms, the lifetime counters behind Stats, and
// embedding-cache occupancy/outcome gauges (hits, misses, stale rejects,
// admits, evictions, entries, dirty backlog). Gauges read the cache under
// its own locks at snapshot time; nothing here is on the lookup path.
func (s *Server) RegisterObs(r *obs.Registry) {
	r.RegisterHistogram("serve.lookup.latency", &s.lookupLat)
	r.RegisterHistogram("serve.flush.latency", &s.flushLat)
	r.Gauge("serve.requests", s.requests.Load)
	r.Gauge("serve.batches", s.batches.Load)
	r.Gauge("serve.embedded", s.embedded.Load)
	r.Gauge("serve.refreshed", s.refreshed.Load)
	r.Gauge("serve.revalidated", s.revalidated.Load)
	r.Gauge("serve.invalidated", s.invalidated.Load)
	cache := s.cache
	r.Gauge("serve.cache.hits", func() int64 { return cache.Stats().Hits })
	r.Gauge("serve.cache.misses", func() int64 { return cache.Stats().Misses })
	r.Gauge("serve.cache.stale_rejects", func() int64 { return cache.Stats().StaleRejects })
	r.Gauge("serve.cache.admits", func() int64 { return cache.Stats().Admits })
	r.Gauge("serve.cache.evicted", func() int64 { return cache.Stats().Evicted })
	r.Gauge("serve.cache.invalidated", func() int64 { return cache.Stats().Invalidated })
	r.Gauge("serve.cache.entries", func() int64 { return int64(cache.Stats().Entries) })
	r.Gauge("serve.cache.dirty", func() int64 { return int64(cache.Stats().Dirty) })
}

// obsSince records the elapsed time since start into h.
func obsSince(h *obs.Histogram, start time.Time) {
	h.Observe(int64(time.Since(start)))
}
