package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/operator"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// clusterFixture builds a trained-enough GraphSAGE trainer whose sampling
// runs through an in-process two-shard cluster, plus the shard servers for
// out-of-band mutation.
func clusterFixture(tb testing.TB, n int) ([]*cluster.Server, *cluster.Client, *core.LinkTrainer) {
	return clusterFixtureT(tb, n, nil)
}

// clusterFixtureT is clusterFixture with the shard transport optionally
// wrapped (benchmarks inject per-RPC latency).
func clusterFixtureT(tb testing.TB, n int, wrap func(cluster.Transport) cluster.Transport) ([]*cluster.Server, *cluster.Client, *core.LinkTrainer) {
	tb.Helper()
	s := graph.MustSchema([]string{"v"}, []string{"rel"})
	b := graph.NewBuilder(s, true)
	for i := 0; i < n; i++ {
		b.AddVertex(0, []float64{float64(i), 1})
	}
	for v := 0; v < n; v++ {
		b.AddEdge(graph.ID(v), graph.ID((v+1)%n), 0, 1)
		b.AddEdge(graph.ID(v), graph.ID((v+7)%n), 0, 1)
	}
	g := b.Finalize()
	assign, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		tb.Fatal(err)
	}
	servers := cluster.FromGraph(g, assign)
	var tp cluster.Transport = cluster.NewLocalTransport(servers, 0, 0)
	if wrap != nil {
		tp = wrap(tp)
	}
	cl := cluster.NewClient(assign, tp, nil)

	rng := rand.New(rand.NewSource(17))
	feat := core.NewTableFeatures("emb", n, 8, rng)
	enc := &core.Encoder{Features: feat, Materialize: true, Normalize: true}
	in, dim, hops := feat.Dim(), 8, []int{3, 2}
	for k := range hops {
		enc.Agg = append(enc.Agg, operator.NewMeanAggregator("agg", in, dim, rng))
		act := nn.ActReLU
		if k == len(hops)-1 {
			act = nil
		}
		enc.Comb = append(enc.Comb, operator.NewConcatCombinerAct("comb", in, dim, dim, act, rng))
		in = dim
	}
	cfg := core.DefaultTrainerConfig()
	cfg.HopNums = hops
	cfg.Batch = 8
	tr, err := core.NewLinkTrainerOver(core.NewLocalEnv(g, rng), cl, enc, cfg, rng)
	if err != nil {
		tb.Fatal(err)
	}
	return servers, cl, tr
}

// directDeps computes the sampled dependency set of each vertex in vs,
// exactly as a serve flush over the same batch order would record it.
func directDeps(tb testing.TB, tr *core.LinkTrainer, vs []graph.ID) map[graph.ID][]graph.ID {
	tb.Helper()
	_, ctx, err := tr.EmbedCtx(vs)
	if err != nil {
		tb.Fatal(err)
	}
	deps := make(map[graph.ID][]graph.ID, len(vs))
	for i, v := range vs {
		deps[v] = depsOf(ctx, i, v)
	}
	return deps
}

func rowOf(m *tensor.Matrix, i int) []float64 {
	return append([]float64(nil), m.Row(i)...)
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServeInvalidationScope: an update through the tier drops exactly the
// cached entries whose sampled dependency set contains the touched vertex —
// the cached k-hop in-neighborhood — asserted via cache-entry counts and
// per-vertex presence.
func TestServeInvalidationScope(t *testing.T) {
	const n = 48
	_, cl, tr := clusterFixture(t, n)
	srv := New(tr, cl, Config{FlushWindow: 200 * time.Microsecond, MaxBatch: n, EdgeType: 0})
	defer srv.Close()

	all := make([]graph.ID, n)
	for i := range all {
		all[i] = graph.ID(i)
	}
	if _, err := srv.EmbedBatch(all); err != nil {
		t.Fatal(err)
	}
	if srv.Cache().Len() != n {
		t.Fatalf("warm cache holds %d entries, want %d", srv.Cache().Len(), n)
	}

	// Predict the dependency sets from an identical direct batch (the
	// fixed-seed sampler makes it reproduce serve's flush exactly), pick a
	// touched vertex that several entries depend on.
	deps := directDeps(t, tr, all)
	var u graph.ID
	for _, d := range deps[0] {
		if d != 0 {
			u = d
			break
		}
	}
	expect := map[graph.ID]bool{}
	for v, ds := range deps {
		for _, d := range ds {
			if d == u {
				expect[v] = true
			}
		}
	}
	if len(expect) < 2 {
		t.Fatalf("test graph too sparse: only %d entries depend on %d", len(expect), u)
	}

	dropped, err := srv.ApplyUpdate([]cluster.RawEdge{{Src: u, Dst: (u + 11) % n, Type: 0, Weight: 1}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != len(expect) {
		t.Fatalf("update dropped %d entries, want exactly the %d dependents of %d", dropped, len(expect), u)
	}
	if got := srv.Cache().Len(); got != n-len(expect) {
		t.Fatalf("cache holds %d entries after invalidation, want %d", got, n-len(expect))
	}
	for v := graph.ID(0); v < n; v++ {
		if srv.Cache().Contains(v) == expect[v] {
			t.Fatalf("vertex %d cached=%v, want %v", v, expect[v], !expect[v])
		}
	}

	// Survivors are implicitly revalidated by the contiguous round: serving
	// one is a pure hit, no encoder work.
	var survivor graph.ID = 0
	for ; expect[survivor]; survivor++ {
	}
	before := srv.Stats()
	if _, err := srv.Embed(survivor); err != nil {
		t.Fatal(err)
	}
	after := srv.Stats()
	if after.Embedded != before.Embedded || after.Cache.Hits != before.Cache.Hits+1 {
		t.Fatalf("survivor lookup was not a cache hit: %+v -> %+v", before, after)
	}

	// The touched vertex re-embeds to its post-update value.
	got, err := srv.Embed(u)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := tr.EmbedCtx([]graph.ID{u})
	if err != nil {
		t.Fatal(err)
	}
	if !sameVec(got, rowOf(want, 0)) {
		t.Fatalf("re-embedded %d = %v, want current %v", u, got, rowOf(want, 0))
	}
}

// TestServeChurnStormExactness hammers the tier with concurrent lookups
// while updates stream through ApplyUpdate, then asserts the strongest
// possible staleness property: because every round routed its touched set
// through the cache, any entry that survived is provably identical to a
// fresh recompute — so after the storm, every served embedding equals the
// trainer's direct answer bit for bit. MaxBatch=1 keeps single-vertex
// batches, making the direct comparison exact. Run with -race.
func TestServeChurnStormExactness(t *testing.T) {
	const n = 48
	_, cl, tr := clusterFixture(t, n)
	srv := New(tr, cl, Config{FlushWindow: 100 * time.Microsecond, MaxBatch: 1, MaxLag: 3, EdgeType: 0})
	defer srv.Close()

	// Warm every vertex so the first churn rounds hit a full cache.
	for v := graph.ID(0); v < n; v++ {
		if _, err := srv.Embed(v); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := graph.ID(rng.Intn(n))
				if _, err := srv.Embed(v); err != nil {
					t.Errorf("embed %d: %v", v, err)
					return
				}
			}
		}(int64(w + 1))
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 25; round++ {
		src := graph.ID(rng.Intn(n))
		add := []cluster.RawEdge{{Src: src, Dst: graph.ID(rng.Intn(n)), Type: 0, Weight: 1}}
		attrs := []cluster.AttrUpdate{{V: graph.ID(rng.Intn(n)), Attr: []float64{float64(round), 1}}}
		if _, err := srv.ApplyUpdate(add, nil, attrs); err != nil {
			t.Fatal(err)
		}
		time.Sleep(500 * time.Microsecond) // let lookups interleave with rounds
	}
	close(stop)
	wg.Wait()

	st := srv.Stats()
	if st.Invalidated == 0 {
		t.Fatal("churn storm invalidated nothing; updates are not reaching the cache")
	}
	if st.Cache.Hits == 0 {
		t.Fatal("churn storm had zero cache hits; scoped invalidation is not preserving entries")
	}
	for v := graph.ID(0); v < n; v++ {
		got, err := srv.Embed(v)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := tr.EmbedCtx([]graph.ID{v})
		if err != nil {
			t.Fatal(err)
		}
		if !sameVec(got, rowOf(want, 0)) {
			t.Fatalf("post-storm serve(%d) = %v, direct = %v: a stale entry was served", v, got, rowOf(want, 0))
		}
	}
}

// TestServeRevalidation: out-of-band churn (updates applied directly to a
// shard, never routed through the tier) ages the whole cache past its lag
// budget; one refresher pass restores every entry whose dependencies are
// provably untouched via row-level Since proofs — no recomputation — while
// the touched vertex's entry stays stale and re-embeds on demand.
func TestServeRevalidation(t *testing.T) {
	const n = 48
	servers, cl, tr := clusterFixture(t, n)
	srv := New(tr, cl, Config{FlushWindow: 200 * time.Microsecond, MaxBatch: 1, MaxLag: 2, RefreshBudget: n, EdgeType: 0})
	defer srv.Close()

	all := make([]graph.ID, n)
	for i := range all {
		all[i] = graph.ID(i)
	}
	deps := make(map[graph.ID][]graph.ID)
	for _, v := range all {
		for vv, ds := range directDeps(t, tr, []graph.ID{v}) {
			deps[vv] = ds
		}
		if _, err := srv.Embed(v); err != nil {
			t.Fatal(err)
		}
	}

	// Choose w with at least one dependent, and a vertex a independent of w.
	var w, a graph.ID
	depOf := func(u, v graph.ID) bool {
		for _, d := range deps[v] {
			if d == u {
				return true
			}
		}
		return false
	}
	w = deps[0][len(deps[0])-1]
	for a = 0; a < n; a++ {
		if !depOf(w, a) {
			break
		}
	}

	// Three out-of-band rounds touching only w: heads advance past MaxLag=2
	// but the covered frontier stalls (the tier never saw the touched sets).
	p := cl.Assign.Part(w)
	for i := 0; i < 3; i++ {
		var ur cluster.UpdateReply
		err := servers[p].ServeUpdate(cluster.UpdateRequest{
			Add: []cluster.RawEdge{{Src: w, Dst: graph.ID(int(w)+i+2) % n, Type: 0, Weight: 1}},
		}, &ur)
		if err != nil {
			t.Fatal(err)
		}
	}

	srv.refreshOnce()
	st := srv.Stats()
	if st.Revalidated == 0 {
		t.Fatalf("refresher revalidated nothing: %+v", st)
	}

	// a's entry was restored by proof: serving it is a hit, not a recompute.
	before := srv.Stats()
	if _, err := srv.Embed(a); err != nil {
		t.Fatal(err)
	}
	after := srv.Stats()
	if after.Embedded != before.Embedded || after.Cache.Hits != before.Cache.Hits+1 {
		t.Fatalf("independent vertex %d was not served from the revalidated cache: %+v -> %+v", a, before, after)
	}

	// w's entry cannot be revalidated (its own adjacency moved): a lookup
	// re-embeds it to the post-churn value.
	got, err := srv.Embed(w)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := tr.EmbedCtx([]graph.ID{w})
	if err != nil {
		t.Fatal(err)
	}
	if !sameVec(got, rowOf(want, 0)) {
		t.Fatalf("touched vertex %d served %v, want recomputed %v", w, got, rowOf(want, 0))
	}
	if final := srv.Stats(); final.Embedded != after.Embedded+1 {
		t.Fatalf("touched vertex was served stale instead of re-embedding: %+v", final)
	}
}
