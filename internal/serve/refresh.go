package serve

import (
	"time"

	"repro/internal/graph"
	"repro/internal/storage"
)

// refresher is the background incremental re-embedding loop. Each tick it
// (1) probes shard heads so out-of-band churn — writers that do not route
// through ApplyUpdate — ages the cache even at a 100% hit rate, (2)
// restores lag-expired entries whose dependencies are provably unchanged
// (one row-level Since round instead of a recompute), and (3) re-embeds the
// hottest invalidated vertices ahead of demand, riding the same coalescer
// as foreground traffic.
func (s *Server) refresher() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RefreshEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
			s.refreshOnce()
		}
	}
}

func (s *Server) refreshOnce() {
	if s.cl != nil {
		if heads, _, err := s.cl.ProbeHeads(); err == nil {
			s.cache.NoteHeads(heads)
		}
		if stale := s.cache.Stale(s.cfg.MaxLag, s.cfg.RefreshBudget); len(stale) > 0 {
			s.revalidate(stale)
		}
	}
	if dirty := s.cache.TakeDirty(s.cfg.RefreshBudget); len(dirty) > 0 {
		if _, err := s.EmbedBatch(dirty); err == nil {
			s.refreshed.Add(int64(len(dirty)))
		}
	}
}

// revalidate tries to restore lag-expired cache entries without recomputing
// them: one SinceOf round over the union of their dependency sets yields,
// per dependency, the proof "unchanged over [changedAt, upto]". An entry
// whose every dependency last changed at or before the entry's proven basis
// is still exact, and its basis rises to the smallest upto among its
// dependencies on each shard (a shard hosting none of its dependencies
// cannot affect it, so it rises to that shard's observed head).
func (s *Server) revalidate(stale []storage.StaleEntry) {
	seen := make(map[graph.ID]int)
	var union []graph.ID
	for _, e := range stale {
		for _, d := range e.Deps {
			if _, ok := seen[d]; !ok {
				seen[d] = len(union)
				union = append(union, d)
			}
		}
	}
	heads := s.cl.ObservedHeads(nil)
	adj, attr, upto, err := s.cl.SinceOf(union, s.cfg.EdgeType)
	if err != nil {
		return // degraded proofs are worthless; recompute via the dirty path
	}
	cand := make([]uint64, s.parts)
	has := make([]bool, s.parts)
	for _, e := range stale {
		for p := range cand {
			cand[p], has[p] = 0, false
		}
		ok := true
		for _, d := range e.Deps {
			k := seen[d]
			p := s.cl.Assign.Part(d)
			changed := adj[k]
			if attr[k] > changed {
				changed = attr[k]
			}
			if changed > e.Basis[p] {
				ok = false // d moved past the proven basis: embedding is void
				break
			}
			if !has[p] || upto[k] < cand[p] {
				cand[p], has[p] = upto[k], true
			}
		}
		if !ok {
			continue
		}
		basis := make([]uint64, s.parts)
		for p := range basis {
			if has[p] {
				basis[p] = cand[p]
			} else if p < len(heads) {
				basis[p] = heads[p]
			}
		}
		s.cache.SetBasis(e.V, basis)
		s.revalidated.Add(1)
	}
}
