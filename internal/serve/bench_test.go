package serve

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
)

// benchFixture is clusterFixture behind a per-RPC latency transport, so the
// benchmark reflects what coalescing actually amortizes: the sampling
// fan-out's network round trips.
func benchServer(b *testing.B, n int, maxBatch, cacheCap int) *Server {
	b.Helper()
	_, cl, tr := clusterFixtureT(b, n, func(inner cluster.Transport) cluster.Transport {
		return cluster.NewLatencyTransport(inner, 100*time.Microsecond)
	})
	srv := New(tr, cl, Config{
		FlushWindow: 200 * time.Microsecond,
		MaxBatch:    maxBatch,
		CacheCap:    cacheCap,
		EdgeType:    0,
	})
	b.Cleanup(srv.Close)
	return srv
}

// BenchmarkServe measures the serving tier at concurrency 8 and reports
// qps, p50/p99 latency, cache hit rate and stale rejects. The serial case
// (MaxBatch=1, cache disabled) is the one-request-per-batch baseline the
// coalesced case must beat by >= 2x; the cached case shows the steady-state
// hot-set hit path.
func BenchmarkServe(b *testing.B) {
	modes := []struct {
		name     string
		maxBatch int
		cacheCap int
	}{
		{"serial", 1, 1},
		{"coalesced", 64, 1},
		{"cached", 64, 4096},
	}
	const n = 64
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			srv := benchServer(b, n, m.maxBatch, m.cacheCap)
			// One warm call outside the clock (builds lazy client state).
			if _, err := srv.Embed(0); err != nil {
				b.Fatal(err)
			}

			var mu sync.Mutex
			var lats []time.Duration
			var seed atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				var local []time.Duration
				for pb.Next() {
					v := graph.ID(rng.Intn(n))
					t0 := time.Now()
					if _, err := srv.Embed(v); err != nil {
						b.Error(err)
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			})
			b.StopTimer()

			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "qps")
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			if len(lats) > 0 {
				b.ReportMetric(float64(lats[len(lats)/2].Microseconds()), "p50-us")
				b.ReportMetric(float64(lats[len(lats)*99/100].Microseconds()), "p99-us")
			}
			st := srv.Stats()
			b.ReportMetric(st.HitRate(), "hit-rate")
			b.ReportMetric(float64(st.Cache.StaleRejects), "stale-rejects")
		})
	}
}
