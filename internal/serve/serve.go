// Package serve is the online inference tier: it answers embedding, link
// score and top-k queries over a trained encoder without ever running a
// backward pass, at latencies a training loop cannot hit. Three mechanisms
// carry the load (Section 5's attribute/embedding caching, applied at the
// serving layer):
//
//   - Request coalescing. Concurrent lookups do not each pay a full
//     sample-gather-encode pipeline; they park in a pending set and a single
//     flush goroutine merges them into one deduplicated mini-batch per flush
//     window (time- or size-triggered). One pipelined pass amortizes the
//     per-batch sampling and RPC fan-out across every waiting caller, and
//     the single-flusher design keeps the encoder free of concurrent
//     inference batches (its feature source may hold per-batch state).
//
//   - Epoch-aware embedding caching. Every computed embedding is admitted
//     to a storage.EmbeddingCache together with its sampled dependency set
//     and a per-shard basis snapshot; it is served only while provably
//     within the configured lag of every shard's newest observed epoch.
//     See the cache's package documentation for the validity algebra.
//
//   - Incremental re-embedding. Updates applied through the tier invalidate
//     exactly the cached k-hop in-neighborhood of the touched vertices; a
//     background refresher re-embeds the hottest invalidated vertices ahead
//     of demand and revalidates lag-expired entries with row-level Since
//     proofs instead of recomputing them.
//
// A note on dependency sets: the registered dependencies are the *sampled*
// context — a fixed-seed subset of the true k-hop in-neighborhood. An update
// to a neighbor that the fixed-seed sampler would never draw for v cannot
// change v's embedding, so invalidating by sampled deps is exact for the
// embeddings this tier computes, not merely approximate.
//
// Observability: the tier's counters (the ones Stats snapshots) and two
// always-on request-path histograms — EmbedBatch latency end to end, and
// per-flush encoder time — fold into a shared obs.Registry via RegisterObs
// under serve.*, alongside embedding-cache outcome gauges. Stats() remains
// the programmatic snapshot; the registry adds the HTTP surface
// (obs.Serve's /metrics and /metrics.json) at one clock read and one atomic
// add per call.
package serve

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Embedder is the forward-only encoder seam; *core.LinkTrainer satisfies it.
// EmbedCtx must be safe for concurrent callers and deterministic (the serve
// tier additionally guarantees it never issues overlapping calls).
type Embedder interface {
	EmbedCtx(vs []graph.ID) (*tensor.Matrix, *sampling.Context, error)
}

// Config tunes the serving tier. Zero values select the defaults noted.
type Config struct {
	// FlushWindow is how long the coalescer holds the first request of a
	// batch open for others to join (default 1ms). A window elapses OR the
	// pending set reaching MaxBatch triggers a flush, whichever is first.
	FlushWindow time.Duration
	// MaxBatch caps the deduplicated vertices per encoder call (default 64).
	MaxBatch int
	// MaxLag is the staleness budget: a cached embedding is served only
	// while within MaxLag update epochs of every shard's newest observed
	// head (default 8). Ignored in local mode (no cluster client).
	MaxLag uint64
	// CacheCap bounds the embedding cache (default 4096 entries).
	CacheCap int
	// RefreshEvery is the background refresher period; 0 disables it.
	RefreshEvery time.Duration
	// RefreshBudget caps re-embeddings and revalidations per refresher
	// tick (default 32).
	RefreshBudget int
	// EdgeType is the relation embeddings are computed over (used for
	// revalidation proofs).
	EdgeType graph.EdgeType
	// Importance, when set, scores a vertex's expected reuse (the paper's
	// Imp^(k) hotness): embedding-cache evictions then spare
	// high-importance entries and the refresher re-embeds hot vertices
	// first. Nil ranks purely by observed hit counts.
	Importance func(graph.ID) float64
}

func (c *Config) defaults() {
	if c.FlushWindow <= 0 {
		c.FlushWindow = time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxLag == 0 {
		c.MaxLag = 8
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 4096
	}
	if c.RefreshBudget <= 0 {
		c.RefreshBudget = 32
	}
}

// ErrClosed is returned by lookups issued after Close.
var ErrClosed = errors.New("serve: server closed")

// errLocal guards cluster-only operations in local mode.
var errLocal = errors.New("serve: no cluster client (local mode)")

// Server is the serving tier instance. All exported methods are safe for
// concurrent use; Close releases the background goroutines.
type Server struct {
	emb   Embedder
	cl    *cluster.Client // nil in local (single-process) mode
	cfg   Config
	cache *storage.EmbeddingCache
	parts int

	mu      sync.Mutex
	closing bool
	pending []*request
	kick    chan struct{}

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	requests    atomic.Int64 // vertices requested
	batches     atomic.Int64 // encoder flushes
	embedded    atomic.Int64 // vertices through the encoder
	refreshed   atomic.Int64 // dirty vertices re-embedded by the refresher
	revalidated atomic.Int64 // stale entries restored by Since proofs
	invalidated atomic.Int64 // entries dropped by ApplyUpdate rounds

	lookupLat obs.Histogram // EmbedBatch end to end, per call
	flushLat  obs.Histogram // one coalesced encoder flush
}

// request is one caller's cache-miss set, parked until a flush delivers it.
type request struct {
	vs   []graph.ID
	out  [][]float64
	err  error
	done chan struct{}
}

// New builds a serving tier over emb. cl may be nil for local mode: the
// cache then has a single never-advancing shard clock (entries are valid
// forever) and ApplyUpdate is unavailable. With a client, the cache's
// invalidation frontier is seeded from a head probe so scoped invalidation
// is effective from the first request; if the probe fails (all shards
// degraded) the tier still starts, falling back to the pure lag bound.
func New(emb Embedder, cl *cluster.Client, cfg Config) *Server {
	cfg.defaults()
	parts := 1
	if cl != nil {
		parts = cl.Assign.P
	}
	s := &Server{
		emb:    emb,
		cl:     cl,
		cfg:    cfg,
		cache:  storage.NewEmbeddingCache(parts, cfg.CacheCap),
		parts:  parts,
		kick:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	if cfg.Importance != nil {
		s.cache.SetImportance(cfg.Importance)
	}
	if cl != nil {
		if heads, _, err := cl.ProbeHeads(); err == nil {
			s.cache.InitCovered(heads)
		}
	}
	s.wg.Add(1)
	go s.coalesce()
	if cfg.RefreshEvery > 0 {
		s.wg.Add(1)
		go s.refresher()
	}
	return s
}

// Cache exposes the embedding cache (tests assert invalidation scope and
// hit rates through it).
func (s *Server) Cache() *storage.EmbeddingCache { return s.cache }

// Embed returns v's embedding, from cache when provably fresh, otherwise
// via the next coalesced encoder batch. The returned slice is shared with
// the cache — callers must not mutate it.
func (s *Server) Embed(v graph.ID) ([]float64, error) {
	out, err := s.EmbedBatch([]graph.ID{v})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// EmbedBatch is Embed for several vertices in one call; cache hits are
// served immediately and only the misses ride the coalescer.
func (s *Server) EmbedBatch(vs []graph.ID) ([][]float64, error) {
	defer obsSince(&s.lookupLat, time.Now())
	s.requests.Add(int64(len(vs)))
	out := make([][]float64, len(vs))
	var miss []graph.ID
	var missIdx []int
	for i, v := range vs {
		if vec, ok := s.cache.Get(v, s.cfg.MaxLag); ok {
			out[i] = vec
			continue
		}
		miss = append(miss, v)
		missIdx = append(missIdx, i)
	}
	if len(miss) == 0 {
		return out, nil
	}
	r := &request{vs: miss, out: make([][]float64, len(miss)), done: make(chan struct{})}
	if err := s.enqueue(r); err != nil {
		return nil, err
	}
	<-r.done
	if r.err != nil {
		return nil, r.err
	}
	for k, i := range missIdx {
		out[i] = r.out[k]
	}
	return out, nil
}

// Score returns the dot-product link score of (u, v); both lookups share
// one coalesced batch.
func (s *Server) Score(u, v graph.ID) (float64, error) {
	out, err := s.EmbedBatch([]graph.ID{u, v})
	if err != nil {
		return 0, err
	}
	return dot(out[0], out[1]), nil
}

// Scored is one TopK result.
type Scored struct {
	V     graph.ID
	Score float64
}

// TopK scores src against every candidate (one coalesced batch for all
// len(cands)+1 lookups) and returns the k highest-scoring candidates in
// descending order.
func (s *Server) TopK(src graph.ID, cands []graph.ID, k int) ([]Scored, error) {
	vs := make([]graph.ID, 0, len(cands)+1)
	vs = append(vs, src)
	vs = append(vs, cands...)
	out, err := s.EmbedBatch(vs)
	if err != nil {
		return nil, err
	}
	scored := make([]Scored, len(cands))
	for i, c := range cands {
		scored[i] = Scored{V: c, Score: dot(out[0], out[i+1])}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].V < scored[j].V
	})
	if k > len(scored) {
		k = len(scored)
	}
	return scored[:k], nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// ApplyUpdate pushes a graph mutation through the serving tier: edges and
// attribute rows are grouped by owning shard, applied via the update RPC,
// and each shard's reply epoch drives a cache-invalidation round scoped to
// exactly the touched vertices' cached in-neighborhoods. Returns the number
// of cache entries invalidated.
func (s *Server) ApplyUpdate(add, remove []cluster.RawEdge, attrs []cluster.AttrUpdate) (int, error) {
	if s.cl == nil {
		return 0, errLocal
	}
	type partUpdate struct {
		req     cluster.UpdateRequest
		touched map[graph.ID]struct{}
	}
	groups := make(map[int]*partUpdate)
	at := func(p int) *partUpdate {
		g, ok := groups[p]
		if !ok {
			g = &partUpdate{touched: make(map[graph.ID]struct{})}
			groups[p] = g
		}
		return g
	}
	// Edges live with their source vertex: an add/remove rewrites Src's
	// adjacency on Src's shard and touches nothing else.
	for _, e := range add {
		g := at(s.cl.Assign.Part(e.Src))
		g.req.Add = append(g.req.Add, e)
		g.touched[e.Src] = struct{}{}
	}
	for _, e := range remove {
		g := at(s.cl.Assign.Part(e.Src))
		g.req.Remove = append(g.req.Remove, e)
		g.touched[e.Src] = struct{}{}
	}
	for _, a := range attrs {
		g := at(s.cl.Assign.Part(a.V))
		g.req.SetAttr = append(g.req.SetAttr, a)
		g.touched[a.V] = struct{}{}
	}
	parts := make([]int, 0, len(groups))
	for p := range groups {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	dropped := 0
	for _, p := range parts {
		g := groups[p]
		var ur cluster.UpdateReply
		if err := s.cl.T.Update(p, g.req, &ur); err != nil {
			return dropped, err
		}
		touched := make([]graph.ID, 0, len(g.touched))
		for v := range g.touched {
			touched = append(touched, v)
		}
		dropped += s.cache.Invalidate(p, ur.Epoch, touched)
	}
	s.invalidated.Add(int64(dropped))
	return dropped, nil
}

// enqueue parks r for the next flush. The closing flag is checked under the
// same lock that guards pending, so a request either errors out here or is
// guaranteed delivery by the coalescer's final drain.
func (s *Server) enqueue(r *request) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrClosed
	}
	s.pending = append(s.pending, r)
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
	return nil
}

func (s *Server) pendingLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// coalesce is the single flush goroutine: it waits for the first request of
// a batch, holds the window open (cut short if the pending set reaches
// MaxBatch), then flushes. Being the only caller of the encoder, it
// serializes inference batches by construction.
func (s *Server) coalesce() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.closed:
			s.flush()
			return
		case <-s.kick:
		}
		if s.pendingLen() < s.cfg.MaxBatch {
			timer.Reset(s.cfg.FlushWindow)
			waiting := true
			for waiting {
				select {
				case <-timer.C:
					waiting = false
				case <-s.kick:
					if s.pendingLen() >= s.cfg.MaxBatch {
						stopTimer(timer)
						waiting = false
					}
				case <-s.closed:
					stopTimer(timer)
					s.flush()
					return
				}
			}
		}
		s.flush()
	}
}

// stopTimer stops t and drains a pending fire; the caller is the timer's
// only reader.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// flush takes the pending set, dedups it (rechecking the cache — an earlier
// flush may have filled some slots), embeds the remainder in MaxBatch-sized
// chunks, admits the results, and releases every waiting caller.
func (s *Server) flush() {
	s.mu.Lock()
	reqs := s.pending
	s.pending = nil
	s.mu.Unlock()
	if len(reqs) == 0 {
		return
	}
	defer obsSince(&s.flushLat, time.Now())
	type slot struct{ req, idx int }
	want := make(map[graph.ID][]slot)
	var order []graph.ID
	for ri, r := range reqs {
		for i, v := range r.vs {
			if vec, ok := s.cache.Get(v, s.cfg.MaxLag); ok {
				r.out[i] = vec
				continue
			}
			if _, seen := want[v]; !seen {
				order = append(order, v)
			}
			want[v] = append(want[v], slot{ri, i})
		}
	}
	if len(order) > 0 {
		s.batches.Add(1)
	}
	var flushErr error
	for off := 0; off < len(order); off += s.cfg.MaxBatch {
		end := off + s.cfg.MaxBatch
		if end > len(order) {
			end = len(order)
		}
		chunk := order[off:end]
		vecs, err := s.embedChunk(chunk)
		if err != nil {
			flushErr = err
			break
		}
		for i, v := range chunk {
			for _, sl := range want[v] {
				reqs[sl.req].out[sl.idx] = vecs[i]
			}
		}
	}
	for _, r := range reqs {
		if flushErr != nil {
			for _, vec := range r.out {
				if vec == nil {
					r.err = flushErr
					break
				}
			}
		}
		close(r.done)
	}
}

// embedChunk runs one encoder call and admits each row with its sampled
// dependency set and the per-shard basis snapshot taken BEFORE the encoder
// read any graph data (an update landing mid-computation must age the
// entry, not be hidden by it). Admission can be rejected on a detected
// race; the computed vector is still returned to the callers.
func (s *Server) embedChunk(chunk []graph.ID) ([][]float64, error) {
	var basis []uint64
	if s.cl != nil {
		basis = s.cl.ObservedHeads(nil)
	}
	m, ctx, err := s.emb.EmbedCtx(chunk)
	if err != nil {
		return nil, err
	}
	s.embedded.Add(int64(len(chunk)))
	vecs := make([][]float64, len(chunk))
	for i, v := range chunk {
		vec := append([]float64(nil), m.Row(i)...)
		vecs[i] = vec
		s.cache.Admit(v, vec, depsOf(ctx, i, v), basis)
	}
	return vecs, nil
}

// depsOf extracts input i's sampled dependency set from the layered
// context: layer L holds prod(HopNums[:L]) sampled vertices per input, laid
// out contiguously, so input i owns the subtree [i*prod, (i+1)*prod) of
// every layer. The input vertex itself is always a dependency (its own
// attribute row feeds the encoder).
func depsOf(ctx *sampling.Context, i int, v graph.ID) []graph.ID {
	set := map[graph.ID]struct{}{v: {}}
	if ctx != nil {
		prod := 1
		for l := 1; l < len(ctx.Layers); l++ {
			prod *= ctx.HopNums[l-1]
			layer := ctx.Layers[l]
			lo, hi := i*prod, (i+1)*prod
			if hi > len(layer) {
				hi = len(layer)
			}
			for _, d := range layer[lo:hi] {
				set[d] = struct{}{}
			}
		}
	}
	deps := make([]graph.ID, 0, len(set))
	for d := range set {
		deps = append(deps, d)
	}
	sort.Slice(deps, func(a, b int) bool { return deps[a] < deps[b] })
	return deps
}

// Stats is a point-in-time snapshot of the tier's counters.
type Stats struct {
	Requests    int64 // vertices requested
	Batches     int64 // encoder flushes
	Embedded    int64 // vertices through the encoder
	Refreshed   int64 // refresher re-embeddings
	Revalidated int64 // stale entries restored by Since proofs
	Invalidated int64 // entries dropped by ApplyUpdate
	Cache       storage.EmbeddingCacheStats
}

// HitRate is served-from-cache over requested, in [0, 1].
func (st Stats) HitRate() float64 {
	if st.Requests == 0 {
		return 0
	}
	return float64(st.Cache.Hits) / float64(st.Requests)
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:    s.requests.Load(),
		Batches:     s.batches.Load(),
		Embedded:    s.embedded.Load(),
		Refreshed:   s.refreshed.Load(),
		Revalidated: s.revalidated.Load(),
		Invalidated: s.invalidated.Load(),
		Cache:       s.cache.Stats(),
	}
}

// Close stops the coalescer and refresher and waits for them. Requests
// enqueued before Close are still delivered; later ones get ErrClosed.
// Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		s.mu.Unlock()
		close(s.closed)
	})
	s.wg.Wait()
}
