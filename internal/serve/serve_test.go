package serve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

// stubEmbedder is a deterministic Embedder with controllable latency and
// dependency sets: vertex v embeds to [v, v*2] and depends on {v, v+100}
// (one sampled "neighbor" per vertex, HopNums = [1]).
type stubEmbedder struct {
	mu      sync.Mutex
	calls   int
	batches [][]graph.ID
	delay   time.Duration
	err     error
}

func (e *stubEmbedder) EmbedCtx(vs []graph.ID) (*tensor.Matrix, *sampling.Context, error) {
	e.mu.Lock()
	e.calls++
	e.batches = append(e.batches, append([]graph.ID(nil), vs...))
	err := e.err
	e.mu.Unlock()
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	if err != nil {
		return nil, nil, err
	}
	m := tensor.New(len(vs), 2)
	ctx := &sampling.Context{HopNums: []int{1}, Layers: make([][]graph.ID, 2)}
	ctx.Layers[0] = append([]graph.ID(nil), vs...)
	for i, v := range vs {
		m.Set(i, 0, float64(v))
		m.Set(i, 1, float64(v)*2)
		ctx.Layers[1] = append(ctx.Layers[1], v+100)
	}
	return m, ctx, nil
}

func (e *stubEmbedder) stats() (int, [][]graph.ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls, e.batches
}

// TestCoalescerMergesConcurrentLookups: N concurrent single-vertex lookups
// released together must collapse into far fewer encoder calls than N, and
// every caller must still get its own correct row.
func TestCoalescerMergesConcurrentLookups(t *testing.T) {
	emb := &stubEmbedder{delay: 2 * time.Millisecond}
	s := New(emb, nil, Config{FlushWindow: 20 * time.Millisecond, MaxBatch: 64})
	defer s.Close()

	const n = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v := graph.ID(i)
			vec, err := s.Embed(v)
			if err != nil || len(vec) != 2 || vec[0] != float64(v) || vec[1] != float64(v)*2 {
				bad.Add(1)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d lookups returned wrong rows", bad.Load())
	}
	calls, _ := emb.stats()
	if calls >= n/2 {
		t.Fatalf("32 concurrent lookups took %d encoder calls; coalescing is not happening", calls)
	}
	if st := s.Stats(); st.Requests != n || st.Batches >= n/2 {
		t.Fatalf("stats = %+v, want %d requests across few coalesced flushes", st, n)
	}
}

// TestCoalescerBatchSizeTrigger: with an effectively infinite flush window,
// the pending set reaching MaxBatch must flush by itself.
func TestCoalescerBatchSizeTrigger(t *testing.T) {
	emb := &stubEmbedder{}
	s := New(emb, nil, Config{FlushWindow: time.Minute, MaxBatch: 8})
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Embed(graph.ID(i)); err != nil {
				t.Errorf("embed: %v", err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("MaxBatch pending requests did not trigger a flush before the window")
	}
}

// TestCoalescerDedup: concurrent lookups of the SAME vertex share one
// encoder slot.
func TestCoalescerDedup(t *testing.T) {
	emb := &stubEmbedder{delay: time.Millisecond}
	s := New(emb, nil, Config{FlushWindow: 20 * time.Millisecond, MaxBatch: 64})
	defer s.Close()

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			vec, err := s.Embed(7)
			if err != nil || vec[0] != 7 {
				t.Errorf("embed: %v %v", vec, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	_, batches := emb.stats()
	for _, b := range batches {
		seen := map[graph.ID]bool{}
		for _, v := range b {
			if seen[v] {
				t.Fatalf("batch %v contains a duplicate vertex", b)
			}
			seen[v] = true
		}
	}
	if st := s.Stats(); st.Embedded > int64(len(batches)) {
		t.Fatalf("%d vertices embedded across %d batches; dedup failed", st.Embedded, len(batches))
	}
}

// TestFlushWindowElapses: a lone request must not wait for company — the
// window expiring flushes a batch of one.
func TestFlushWindowElapses(t *testing.T) {
	emb := &stubEmbedder{}
	s := New(emb, nil, Config{FlushWindow: 5 * time.Millisecond, MaxBatch: 64})
	defer s.Close()
	vec, err := s.Embed(3)
	if err != nil || vec[0] != 3 {
		t.Fatalf("lone embed: %v %v", vec, err)
	}
	// Second lookup of the same vertex is a pure cache hit (local mode
	// entries never expire).
	if _, err := s.Embed(3); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Cache.Hits != 1 || st.Embedded != 1 {
		t.Fatalf("stats = %+v, want one embedded vertex then one hit", st)
	}
}

// TestEmbedErrorPropagates: an encoder failure reaches every waiting caller
// and does not poison later flushes.
func TestEmbedErrorPropagates(t *testing.T) {
	emb := &stubEmbedder{err: errors.New("shard down")}
	s := New(emb, nil, Config{FlushWindow: time.Millisecond, MaxBatch: 4})
	defer s.Close()
	if _, err := s.Embed(1); err == nil || err.Error() != "shard down" {
		t.Fatalf("err = %v, want the encoder failure", err)
	}
	emb.mu.Lock()
	emb.err = nil
	emb.mu.Unlock()
	if _, err := s.Embed(1); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
}

// TestCloseReleasesGoroutines: Close stops the coalescer and refresher (no
// goroutine leak) and later lookups fail fast with ErrClosed.
func TestCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		emb := &stubEmbedder{}
		s := New(emb, nil, Config{FlushWindow: time.Millisecond, RefreshEvery: time.Millisecond})
		if _, err := s.Embed(graph.ID(i)); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s.Close() // idempotent
		if _, err := s.Embed(99); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-Close embed err = %v, want ErrClosed", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines: %d before, %d after five create/Close cycles", before, now)
	}
}

// TestTopKOrders: TopK scores through one coalesced batch and returns
// descending scores.
func TestTopKOrders(t *testing.T) {
	emb := &stubEmbedder{}
	s := New(emb, nil, Config{FlushWindow: time.Millisecond})
	defer s.Close()
	// Score(src=2, c) = 2c + 4*2c = 10c: monotone in c.
	top, err := s.TopK(2, []graph.ID{5, 9, 1, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 || top[0].V != 9 || top[1].V != 7 || top[2].V != 5 {
		t.Fatalf("topk = %+v, want candidates 9,7,5", top)
	}
	if sc, err := s.Score(2, 9); err != nil || sc != top[0].Score {
		t.Fatalf("Score = %v (%v), want %v", sc, err, top[0].Score)
	}
}
