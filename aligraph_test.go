package aligraph

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/partition"
	"repro/internal/storage"
)

func TestPlatformEndToEnd(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.03))
	cfg := DefaultConfig()
	cfg.Partitions = 2
	cfg.Partitioner = "streaming"
	p, err := NewPlatform(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheRate() <= 0 {
		t.Fatal("importance cache empty")
	}
	if p.Assign.P != 2 {
		t.Fatal("partition count")
	}

	// Samplers are wired.
	trav := p.Traverse()
	batch := trav.SampleVertices(0, 8)
	if len(batch) != 8 {
		t.Fatal("traverse")
	}
	ctx, err := p.Neighborhood().Sample(0, batch, []int{3})
	if err != nil || len(ctx.Layers[1]) != 24 {
		t.Fatalf("neighborhood: %v", err)
	}
	if negs := p.Negative(0).Sample(batch, 2); len(negs) != 16 {
		t.Fatal("negative")
	}

	// End-to-end training through the facade.
	tc := DefaultTrainConfig()
	tc.HopNums = []int{3, 2}
	tc.Batch = 16
	tr := p.NewGraphSAGE(tc)
	losses, err := tr.Train(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 20 {
		t.Fatal("losses")
	}
	emb, err := tr.Embed(batch)
	if err != nil || emb.Rows != 8 || emb.Cols != tc.Dim {
		t.Fatalf("embed: %v %dx%d", err, emb.Rows, emb.Cols)
	}
	if _, err := tr.Score(batch[0], batch[1]); err != nil {
		t.Fatal(err)
	}
}

// TestPlatformSamplersConcurrent hands out samplers from one Platform to
// many goroutines; each sampler owns an independently seeded rng, so this
// must be race-free (run with -race).
func TestPlatformSamplersConcurrent(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.03))
	p, err := NewPlatform(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			trav := p.Traverse()
			nbr := p.Neighborhood()
			neg := p.Negative(0)
			for i := 0; i < 20; i++ {
				batch := trav.SampleVertices(0, 8)
				if len(batch) != 8 {
					t.Error("traverse batch")
					return
				}
				if _, err := nbr.Sample(0, batch, []int{3, 2}); err != nil {
					t.Errorf("neighborhood: %v", err)
					return
				}
				if negs := neg.Sample(batch, 2); len(negs) != 16 {
					t.Error("negative batch")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestClusterPlatformTrains runs the full distributed training path over
// in-process shards: TRAVERSE / NEGATIVE / NEIGHBORHOOD all served by
// server RPCs through the batched client, loss decreasing.
func TestClusterPlatformTrains(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.03))
	assign, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := cluster.FromGraph(g, assign)
	tr := cluster.NewLocalTransport(servers, 0, 0)
	cp := NewClusterPlatform(assign, tr, storage.NewImportanceCacheTopFraction(g, 2, 0.2), 1)

	if cp.NumVertices() != g.NumVertices() {
		t.Fatalf("universe %d, want %d", cp.NumVertices(), g.NumVertices())
	}
	if cp.CacheRate() <= 0 {
		t.Fatal("importance cache empty")
	}
	ctx, err := cp.Neighborhood().Sample(0, []ID{0, 1, 2}, []int{3})
	if err != nil || len(ctx.Layers[1]) != 9 {
		t.Fatalf("cluster neighborhood: %v", err)
	}

	tc := DefaultTrainConfig()
	tc.HopNums = []int{3, 2}
	tc.Batch = 16
	tc.UseAttrs = true
	trainer, err := cp.NewGraphSAGE(tc)
	if err != nil {
		t.Fatal(err)
	}
	losses, err := trainer.Train(40)
	if err != nil {
		t.Fatal(err)
	}
	first, last := 0.0, 0.0
	for _, l := range losses[:10] {
		first += l
	}
	for _, l := range losses[len(losses)-10:] {
		last += l
	}
	if last >= first {
		t.Fatalf("distributed loss did not decrease: %f -> %f", first/10, last/10)
	}
	emb, err := trainer.Embed([]ID{0, 1})
	if err != nil || emb.Rows != 2 || emb.Cols != tc.Dim {
		t.Fatalf("embed: %v", err)
	}
}

// TestClusterPipelineMatchesSyncTraining trains the same sharded GraphSAGE
// twice — synchronous depth 0 and a prefetching pipeline — and requires
// bit-identical loss curves: the pipeline overlaps sampling with compute
// without perturbing a single draw, including the prefetched-attribute path.
// The neighbor cache is static (importance); a replacing LRU would make
// draws depend on cache warm-up timing and only match statistically.
func TestClusterPipelineMatchesSyncTraining(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.03))
	assign, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := cluster.FromGraph(g, assign)

	train := func(pl PipelineConfig) []float64 {
		t.Helper()
		tr := cluster.NewLocalTransport(servers, 0, 0)
		cp := NewClusterPlatform(assign, tr, storage.NewImportanceCacheTopFraction(g, 2, 0.2), 1)
		tc := DefaultTrainConfig()
		tc.HopNums = []int{3, 2}
		tc.Batch = 16
		tc.UseAttrs = true
		tc.Pipeline = pl
		trainer, err := cp.NewGraphSAGE(tc)
		if err != nil {
			t.Fatal(err)
		}
		defer trainer.Close()
		losses, err := trainer.Train(25)
		if err != nil {
			t.Fatal(err)
		}
		return losses
	}

	want := train(PipelineConfig{})
	got := train(PipelineConfig{Depth: 4, Workers: 3})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: pipeline loss %g, sync %g", i, got[i], want[i])
		}
	}
}

// TestClusterPipelineRace exercises the full concurrent stack under -race:
// pipeline workers sharing one client, LRU neighbor and attribute caches,
// the consuming trainer, inference mid-flight and Close.
func TestClusterPipelineRace(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.03))
	assign, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := cluster.FromGraph(g, assign)
	tr := cluster.NewLocalTransport(servers, 0, 0)
	cp := NewClusterPlatform(assign, tr, storage.NewLRUNeighborCache(g.NumVertices()/5), 1)
	tc := DefaultTrainConfig()
	tc.HopNums = []int{3, 2}
	tc.Batch = 16
	tc.UseAttrs = true
	tc.Pipeline = PipelineConfig{Depth: 3, Workers: 4}
	trainer, err := cp.NewGraphSAGE(tc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Train(15); err != nil {
		t.Fatal(err)
	}
	// Inference while the producers are still prefetching ahead.
	if _, err := trainer.Embed([]ID{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := trainer.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.02))
	if _, err := NewPlatform(g, Config{Partitioner: "bogus", Partitions: 2}); err == nil {
		t.Fatal("expected unknown partitioner error")
	}
	// Zero-value config gets sane defaults.
	p, err := NewPlatform(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Assign.P != 1 {
		t.Fatal("default partitions")
	}
	if p.CacheRate() != 0 {
		t.Fatal("cache should be disabled by default config literal")
	}
}

func TestSchemaFacade(t *testing.T) {
	s, err := NewSchema([]string{"user", "item"}, []string{"click"})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(s, true)
	u := b.AddVertex(0, nil)
	i := b.AddVertex(1, nil)
	b.AddEdge(u, i, 0, 1)
	g := b.Finalize()
	if g.NumEdges() != 1 {
		t.Fatal("facade build")
	}
}
