package aligraph

import (
	"testing"

	"repro/internal/dataset"
)

func TestPlatformEndToEnd(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.03))
	cfg := DefaultConfig()
	cfg.Partitions = 2
	cfg.Partitioner = "streaming"
	p, err := NewPlatform(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheRate() <= 0 {
		t.Fatal("importance cache empty")
	}
	if p.Assign.P != 2 {
		t.Fatal("partition count")
	}

	// Samplers are wired.
	trav := p.Traverse()
	batch := trav.SampleVertices(0, 8)
	if len(batch) != 8 {
		t.Fatal("traverse")
	}
	ctx, err := p.Neighborhood().Sample(0, batch, []int{3})
	if err != nil || len(ctx.Layers[1]) != 24 {
		t.Fatalf("neighborhood: %v", err)
	}
	if negs := p.Negative(0).Sample(batch, 2); len(negs) != 16 {
		t.Fatal("negative")
	}

	// End-to-end training through the facade.
	tc := DefaultTrainConfig()
	tc.HopNums = []int{3, 2}
	tc.Batch = 16
	tr := p.NewGraphSAGE(tc)
	losses, err := tr.Train(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 20 {
		t.Fatal("losses")
	}
	emb, err := tr.Embed(batch)
	if err != nil || emb.Rows != 8 || emb.Cols != tc.Dim {
		t.Fatalf("embed: %v %dx%d", err, emb.Rows, emb.Cols)
	}
	if _, err := tr.Score(batch[0], batch[1]); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.02))
	if _, err := NewPlatform(g, Config{Partitioner: "bogus", Partitions: 2}); err == nil {
		t.Fatal("expected unknown partitioner error")
	}
	// Zero-value config gets sane defaults.
	p, err := NewPlatform(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Assign.P != 1 {
		t.Fatal("default partitions")
	}
	if p.CacheRate() != 0 {
		t.Fatal("cache should be disabled by default config literal")
	}
}

func TestSchemaFacade(t *testing.T) {
	s, err := NewSchema([]string{"user", "item"}, []string{"click"})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(s, true)
	u := b.AddVertex(0, nil)
	i := b.AddVertex(1, nil)
	b.AddEdge(u, i, 0, 1)
	g := b.Finalize()
	if g.NumEdges() != 1 {
		t.Fatal("facade build")
	}
}
