// Package aligraph is the public API of this AliGraph reproduction: a
// comprehensive graph neural network platform with distributed graph
// storage, optimized sampling operators (TRAVERSE / NEIGHBORHOOD /
// NEGATIVE), AGGREGATE/COMBINE operators with intermediate-vector
// materialization, and an algorithm layer containing the paper's six
// in-house GNNs and their published baselines.
//
// The three system layers of the paper map onto this API as:
//
//   - storage layer:  Platform (partitioning, attribute indices,
//     importance-based neighbor caching)
//   - sampling layer: Platform.Traverse / Neighborhood / Negative
//   - operator layer: the encoder behind Platform.NewGraphSAGE (and every
//     model in internal/algo)
//
// See examples/ for runnable end-to-end programs.
package aligraph

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/operator"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Re-exported core data-model types. IDs are dense int64s; schemas name the
// vertex and edge types of an attributed heterogeneous graph (AHG).
type (
	// Graph is an immutable CSR-backed attributed heterogeneous graph.
	Graph = graph.Graph
	// Builder accumulates vertices and edges and produces a Graph.
	Builder = graph.Builder
	// Schema names vertex and edge types.
	Schema = graph.Schema
	// ID identifies a vertex.
	ID = graph.ID
	// VertexType indexes a schema vertex type.
	VertexType = graph.VertexType
	// EdgeType indexes a schema edge type.
	EdgeType = graph.EdgeType
	// Dynamic is a snapshot series G^(1)..G^(T).
	Dynamic = graph.Dynamic
	// Matrix is the dense embedding matrix type.
	Matrix = tensor.Matrix
)

// NewSchema creates a schema from vertex- and edge-type names.
func NewSchema(vertexTypes, edgeTypes []string) (*Schema, error) {
	return graph.NewSchema(vertexTypes, edgeTypes)
}

// NewBuilder creates a graph builder.
func NewBuilder(s *Schema, directed bool) *Builder { return graph.NewBuilder(s, directed) }

// Config tunes a Platform.
type Config struct {
	// Partitions is the number of graph-server partitions (0 = 1).
	Partitions int
	// Partitioner selects the built-in partitioner: "metis", "streaming",
	// "hash" or "edgecut" ("" = "hash").
	Partitioner string
	// CacheDepth and CacheThresholds enable importance-based neighbor
	// caching: vertices with Imp^(k) >= CacheThresholds[k-1] have their
	// 1..k-hop neighborhoods cached (Section 3.2). Empty disables.
	CacheThresholds []float64
	// AttrCache sizes the LRU caches fronting the attribute indices.
	AttrCache int
	// Seed drives all platform randomness.
	Seed int64
}

// DefaultConfig mirrors the paper's recommended settings: threshold 0.2 at
// depth 2 caches only the power-law head.
func DefaultConfig() Config {
	return Config{Partitions: 1, Partitioner: "hash", CacheThresholds: []float64{0.2, 0.2}, AttrCache: 4096, Seed: 1}
}

// Platform ties the storage and sampling layers over one graph.
type Platform struct {
	G      *Graph
	Store  *storage.Store
	Assign *partition.Assignment
	Cache  storage.NeighborCache

	rng *rand.Rand
}

// NewPlatform builds the storage layer for g: partition assignment,
// deduplicated attribute indices and the importance cache.
func NewPlatform(g *Graph, cfg Config) (*Platform, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.Partitioner == "" {
		cfg.Partitioner = "hash"
	}
	pt, err := partition.ByName(cfg.Partitioner)
	if err != nil {
		return nil, err
	}
	assign, err := pt.Partition(g, cfg.Partitions)
	if err != nil {
		return nil, fmt.Errorf("aligraph: partition: %w", err)
	}
	p := &Platform{
		G:      g,
		Store:  storage.BuildStore(g, storage.StoreOptions{VertexAttrCache: cfg.AttrCache, EdgeAttrCache: cfg.AttrCache}),
		Assign: assign,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if len(cfg.CacheThresholds) > 0 {
		p.Cache = storage.NewImportanceCache(g, cfg.CacheThresholds)
	} else {
		p.Cache = storage.NoCache{}
	}
	return p, nil
}

// Traverse returns a TRAVERSE sampler over the platform's graph.
func (p *Platform) Traverse() *sampling.Traverse { return sampling.NewTraverse(p.G, p.rng) }

// Neighborhood returns a NEIGHBORHOOD sampler.
func (p *Platform) Neighborhood() *sampling.Neighborhood {
	return sampling.NewNeighborhood(sampling.GraphSource{G: p.G}, p.rng)
}

// Negative returns a NEGATIVE sampler for edge type t.
func (p *Platform) Negative(t EdgeType) *sampling.Negative {
	return sampling.NewNegative(p.G, t, p.rng)
}

// CacheRate reports the fraction of vertices whose neighborhoods are cached.
func (p *Platform) CacheRate() float64 {
	return storage.CacheRate(p.Cache, p.G.NumVertices())
}

// TrainConfig tunes Platform.NewGraphSAGE training.
type TrainConfig struct {
	Dim      int
	HopNums  []int
	Batch    int
	NegK     int
	LR       float64
	EdgeType EdgeType
	// UseAttrs concatenates raw vertex attributes with the learnable table.
	UseAttrs bool
	AttrDim  int
}

// DefaultTrainConfig returns laptop-scale defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Dim: 32, HopNums: []int{5, 3}, Batch: 64, NegK: 4, LR: 0.02}
}

// Trainer wraps the Algorithm 1 encoder with the unsupervised
// link-prediction objective.
type Trainer struct {
	inner *core.LinkTrainer
}

// NewGraphSAGE assembles a GraphSAGE-style model on the platform: mean
// AGGREGATE, concat COMBINE, materialization enabled.
func (p *Platform) NewGraphSAGE(cfg TrainConfig) *Trainer {
	var feat core.FeatureSource = core.NewTableFeatures("emb", p.G.NumVertices(), cfg.Dim, p.rng)
	if cfg.UseAttrs {
		ad := cfg.AttrDim
		if ad == 0 {
			ad = 16
		}
		feat = &core.ConcatFeatures{Srcs: []core.FeatureSource{core.NewAttrFeatures(p.G, ad), feat}}
	}
	enc := &core.Encoder{Features: feat, Materialize: true, Normalize: true}
	in := feat.Dim()
	for k := range cfg.HopNums {
		agg := operator.NewMeanAggregator("agg", in, cfg.Dim, p.rng)
		enc.Agg = append(enc.Agg, agg)
		act := nn.ActReLU
		if k == len(cfg.HopNums)-1 {
			act = nil // linear output layer
		}
		enc.Comb = append(enc.Comb, operator.NewConcatCombinerAct("comb", in, cfg.Dim, cfg.Dim, act, p.rng))
		in = cfg.Dim
	}
	tc := core.TrainerConfig{EdgeType: cfg.EdgeType, HopNums: cfg.HopNums, Batch: cfg.Batch, NegK: cfg.NegK, LR: cfg.LR}
	return &Trainer{inner: core.NewLinkTrainer(p.G, enc, tc, p.rng)}
}

// Train runs steps mini-batches and returns the per-step losses.
func (t *Trainer) Train(steps int) ([]float64, error) { return t.inner.Train(steps) }

// Embed returns embeddings for the given vertices.
func (t *Trainer) Embed(vs []ID) (*Matrix, error) { return t.inner.Embed(vs) }

// EmbedAll returns embeddings for every vertex in ID order.
func (t *Trainer) EmbedAll() (*Matrix, error) { return t.inner.EmbedAll() }

// Score returns the dot-product link score of (u, v).
func (t *Trainer) Score(u, v ID) (float64, error) { return t.inner.Score(u, v) }
