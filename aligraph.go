// Package aligraph is the public API of this AliGraph reproduction: a
// comprehensive graph neural network platform with distributed graph
// storage, optimized sampling operators (TRAVERSE / NEIGHBORHOOD /
// NEGATIVE), AGGREGATE/COMBINE operators with intermediate-vector
// materialization, and an algorithm layer containing the paper's six
// in-house GNNs and their published baselines.
//
// The three system layers of the paper meet at one seam: the batch-first
// sampling.Source contract, which answers a whole hop of a mini-batch per
// call. They map onto this API as:
//
//   - storage layer:  Platform serves an in-memory graph (partitioning,
//     attribute indices, importance-based neighbor caching);
//     ClusterPlatform serves the same contract from live RPC graph shards,
//     stitching one sub-batch per owning server and pushing fixed-width
//     draws server-side (the SampleNeighbors RPC), so hub adjacency lists
//     never cross the network.
//   - sampling layer: Platform.Traverse / Neighborhood / Negative locally;
//     on ClusterPlatform, Neighborhood is exposed directly while TRAVERSE
//     and NEGATIVE run inside the trainer as SampleEdges / NegativePool
//     RPCs. NEIGHBORHOOD consumes any Source, which is what makes the two
//     storage backends interchangeable under one training loop.
//   - operator layer: the encoder behind NewGraphSAGE (and every model in
//     internal/algo), fed aligned contexts regardless of where the
//     neighbors came from.
//
// Between the sampling and operator layers sits the mini-batch pipeline
// seam: batches (positives, negatives, sampled contexts, prefetched
// attributes) are produced by a core.BatchSource and consumed by the
// trainer's compute step. TrainConfig.Pipeline enables the prefetching
// implementation, which assembles Depth batches ahead on Workers goroutines
// so graph-service latency hides behind the forward/backward pass (Section
// 4.1) — without perturbing a single random draw relative to synchronous
// training. Cluster workers start graph-free: the partition assignment and
// schema come from the servers' Bootstrap RPC, hot neighbor lists from the
// pluggable neighbor cache, and hot attribute rows from a client-side LRU
// (TrainConfig.AttrCache, invalidated by attribute epoch).
//
// Underneath the cluster storage layer sits internal/version, a
// multi-version snapshot store: each server holds an immutable base
// adjacency plus per-epoch delta overlays in a bounded ring with
// lease-based GC, so ServeUpdate batches apply atomically as new epochs
// while in-flight readers keep their snapshots. Batch producers pin the
// snapshot current at schedule time (Lease/Release RPCs behind
// sampling.PinSource) and every stage of a mini-batch reads it, which
// makes MiniBatch.Epochs.Mixed() an invariant violation rather than a
// detector — training on a live, streaming graph stays
// snapshot-consistent. Trainer.StreamUpdates (and aligraph-train -stream)
// interleaves a live UpdateFeed with training batches on that machinery.
//
// Above the trainer sits the online serving tier (internal/serve, surfaced
// as ClusterPlatform.Serve / Platform.Serve and the aligraph-serve command):
// forward-only embedding, link-score and top-k lookups. Concurrent requests
// coalesce into one deduplicated encoder mini-batch per flush window;
// computed embeddings enter an epoch-aware cache keyed by their sampled
// dependency sets, served only while provably within a bounded lag of every
// shard's newest epoch. Updates applied through the tier invalidate exactly
// the cached k-hop in-neighborhood of the touched vertices, and a
// background refresher re-embeds hot invalidated vertices and restores
// lag-expired entries with row-level Since proofs instead of recomputing
// them.
//
// Observability (internal/obs) is always on and shared by every layer: the
// cluster client keeps per-(edge type, hop) sampling lanes (time, RPC fan-out,
// cache hit / epoch-miss / degraded-draw rates per hop), servers time every
// RPC handler and compaction fold, the pipeline times each batch-lifecycle
// stage (schedule / sample / prefetch / consume, plus park and replay
// counts), and the serving tier folds its counters into the same registry.
// Instruments are lock-free atomics and log-bucketed histograms owned
// directly by the hot paths — recording costs a clock read and a few atomic
// adds, never an allocation or a lock, and never touches a random stream, so
// deterministic training stays bit-identical with instrumentation on. A
// registry names the instruments for one process; obs.Serve exposes its
// snapshot over HTTP (text at /metrics, JSON at /metrics.json, pprof under
// /debug/pprof/) — every shipped binary takes -metrics-addr. Register a
// trainer with Trainer.RegisterObs, a client with cluster.Client.RegisterObs,
// a server with cluster.Server.RegisterObs, the serving tier with
// serve.Server.RegisterObs.
//
// See examples/ for runnable end-to-end programs; examples/distributed
// trains GraphSAGE against net/rpc shards while streaming updates into
// them, and examples/serving runs the inference tier over live shards under
// churn.
package aligraph

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/operator"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Re-exported core data-model types. IDs are dense int64s; schemas name the
// vertex and edge types of an attributed heterogeneous graph (AHG).
type (
	// Graph is an immutable CSR-backed attributed heterogeneous graph.
	Graph = graph.Graph
	// Builder accumulates vertices and edges and produces a Graph.
	Builder = graph.Builder
	// Schema names vertex and edge types.
	Schema = graph.Schema
	// ID identifies a vertex.
	ID = graph.ID
	// VertexType indexes a schema vertex type.
	VertexType = graph.VertexType
	// EdgeType indexes a schema edge type.
	EdgeType = graph.EdgeType
	// Dynamic is a snapshot series G^(1)..G^(T).
	Dynamic = graph.Dynamic
	// Matrix is the dense embedding matrix type.
	Matrix = tensor.Matrix
)

// NewSchema creates a schema from vertex- and edge-type names.
func NewSchema(vertexTypes, edgeTypes []string) (*Schema, error) {
	return graph.NewSchema(vertexTypes, edgeTypes)
}

// NewBuilder creates a graph builder.
func NewBuilder(s *Schema, directed bool) *Builder { return graph.NewBuilder(s, directed) }

// Config tunes a Platform.
type Config struct {
	// Partitions is the number of graph-server partitions (0 = 1).
	Partitions int
	// Partitioner selects the built-in partitioner: "metis", "streaming",
	// "hash" or "edgecut" ("" = "hash").
	Partitioner string
	// CacheDepth and CacheThresholds enable importance-based neighbor
	// caching: vertices with Imp^(k) >= CacheThresholds[k-1] have their
	// 1..k-hop neighborhoods cached (Section 3.2). Empty disables.
	CacheThresholds []float64
	// AttrCache sizes the LRU caches fronting the attribute indices.
	AttrCache int
	// Seed drives all platform randomness.
	Seed int64
}

// DefaultConfig mirrors the paper's recommended settings: threshold 0.2 at
// depth 2 caches only the power-law head.
func DefaultConfig() Config {
	return Config{Partitions: 1, Partitioner: "hash", CacheThresholds: []float64{0.2, 0.2}, AttrCache: 4096, Seed: 1}
}

// Platform ties the storage and sampling layers over one graph.
type Platform struct {
	G      *Graph
	Store  *storage.Store
	Assign *partition.Assignment
	Cache  storage.NeighborCache

	src *sampling.GraphSource // shared batch Source (and its alias indexes)
	mu  sync.Mutex
	rng *rand.Rand
}

// NewPlatform builds the storage layer for g: partition assignment,
// deduplicated attribute indices and the importance cache.
func NewPlatform(g *Graph, cfg Config) (*Platform, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.Partitioner == "" {
		cfg.Partitioner = "hash"
	}
	pt, err := partition.ByName(cfg.Partitioner)
	if err != nil {
		return nil, err
	}
	assign, err := pt.Partition(g, cfg.Partitions)
	if err != nil {
		return nil, fmt.Errorf("aligraph: partition: %w", err)
	}
	p := &Platform{
		G:      g,
		Store:  storage.BuildStore(g, storage.StoreOptions{VertexAttrCache: cfg.AttrCache, EdgeAttrCache: cfg.AttrCache}),
		Assign: assign,
		src:    sampling.NewGraphSource(g),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if len(cfg.CacheThresholds) > 0 {
		p.Cache = storage.NewImportanceCache(g, cfg.CacheThresholds)
	} else {
		p.Cache = storage.NoCache{}
	}
	return p, nil
}

// newRng derives an independently seeded rand.Rand under the platform
// lock. Every sampler handed out gets its own generator, so samplers
// created from one Platform can be used concurrently without sharing
// unsynchronized rng state.
func (p *Platform) newRng() *rand.Rand {
	p.mu.Lock()
	defer p.mu.Unlock()
	return rand.New(rand.NewSource(p.rng.Int63()))
}

// Traverse returns a TRAVERSE sampler over the platform's graph.
func (p *Platform) Traverse() *sampling.Traverse { return sampling.NewTraverse(p.G, p.newRng()) }

// Neighborhood returns a NEIGHBORHOOD sampler. All samplers share the
// platform's GraphSource (and therefore its lazily built alias indexes).
func (p *Platform) Neighborhood() *sampling.Neighborhood {
	return sampling.NewNeighborhood(p.src, p.newRng())
}

// Negative returns a NEGATIVE sampler for edge type t.
func (p *Platform) Negative(t EdgeType) *sampling.Negative {
	return sampling.NewNegative(p.G, t, p.newRng())
}

// CacheRate reports the fraction of vertices whose neighborhoods are cached.
func (p *Platform) CacheRate() float64 {
	return storage.CacheRate(p.Cache, p.G.NumVertices())
}

// PipelineConfig tunes the prefetching mini-batch pipeline: Depth batches
// are assembled ahead of the consumer by Workers goroutines, overlapping
// TRAVERSE/NEGATIVE/NEIGHBORHOOD sampling (and, on clusters, the batched
// attribute prefetch) with the GNN forward/backward pass. Depth 0 keeps
// the synchronous depth-0 source, which reproduces pre-pipeline training
// losses bit for bit for a fixed seed — as does any Depth/Workers setting,
// because batch assembly draws its randomness in sequence order.
type PipelineConfig = core.PipelineConfig

// TrainConfig tunes Platform.NewGraphSAGE training.
type TrainConfig struct {
	Dim      int
	HopNums  []int
	Batch    int
	NegK     int
	LR       float64
	EdgeType EdgeType
	// UseAttrs concatenates raw vertex attributes with the learnable table.
	UseAttrs bool
	AttrDim  int
	// Pipeline enables asynchronous batch prefetching when Depth > 0.
	Pipeline PipelineConfig
	// AttrCache caps the client-side attribute LRU (cluster training with
	// UseAttrs); 0 disables it and every encode fetches over RPC.
	AttrCache int
	// NegRefresh rebuilds the negative pool whenever the observed cluster
	// head epoch advances by at least this many epochs; 0 keeps the pool
	// frozen at construction (the historical behavior, and the only option
	// on local platforms, which have no update epochs).
	NegRefresh uint64
}

// DefaultTrainConfig returns laptop-scale defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Dim: 32, HopNums: []int{5, 3}, Batch: 64, NegK: 4, LR: 0.02, AttrCache: 4096}
}

// Trainer wraps the Algorithm 1 encoder with the unsupervised
// link-prediction objective.
type Trainer struct {
	inner  *core.LinkTrainer
	pl     *core.Pipeline     // non-nil when prefetching is enabled
	stream *core.StreamSource // non-nil when StreamUpdates installed a feed
	// releasePins, set on cluster trainers, drops the client's idle
	// snapshot leases so a finished training session does not pin an epoch
	// on long-running servers forever.
	releasePins func()
}

// Close stops the batch producers (the stream source's inner pipeline, or
// the bare pipeline) and releases the session's idle snapshot leases.
// Idempotent; safe on trainers without either.
func (t *Trainer) Close() error {
	var err error
	switch {
	case t.stream != nil:
		err = t.stream.Close()
	case t.pl != nil:
		err = t.pl.Close()
	}
	if t.releasePins != nil {
		t.releasePins()
	}
	return err
}

// RegisterObs names the trainer's batch-pipeline instruments (per-stage
// latency histograms, park/replay counters, ring occupancy) in r under
// core.pipeline.*. A no-op on synchronous (depth-0) trainers, which have no
// pipeline; cluster sampling metrics live on the client — register those via
// cluster.Client.RegisterObs.
func (t *Trainer) RegisterObs(r *obs.Registry) {
	if t.pl != nil {
		t.pl.RegisterObs(r)
	}
}

// withPipeline installs a prefetching source when cfg asks for one.
func withPipeline(tr *Trainer, cfg TrainConfig) *Trainer {
	if cfg.Pipeline.Depth > 0 {
		tr.pl = core.NewPipeline(tr.inner, cfg.Pipeline)
		tr.inner.SetSource(tr.pl)
	}
	return tr
}

// newSAGEEncoder assembles the GraphSAGE-style encoder shared by both
// platforms: mean AGGREGATE, concat COMBINE, materialization enabled.
func newSAGEEncoder(feat core.FeatureSource, cfg TrainConfig, rng *rand.Rand) *core.Encoder {
	enc := &core.Encoder{Features: feat, Materialize: true, Normalize: true}
	in := feat.Dim()
	for k := range cfg.HopNums {
		agg := operator.NewMeanAggregator("agg", in, cfg.Dim, rng)
		enc.Agg = append(enc.Agg, agg)
		act := nn.ActReLU
		if k == len(cfg.HopNums)-1 {
			act = nil // linear output layer
		}
		enc.Comb = append(enc.Comb, operator.NewConcatCombinerAct("comb", in, cfg.Dim, cfg.Dim, act, rng))
		in = cfg.Dim
	}
	return enc
}

// NewGraphSAGE assembles a GraphSAGE-style model on the platform.
func (p *Platform) NewGraphSAGE(cfg TrainConfig) *Trainer {
	rng := p.newRng()
	var feat core.FeatureSource = core.NewTableFeatures("emb", p.G.NumVertices(), cfg.Dim, rng)
	if cfg.UseAttrs {
		ad := cfg.AttrDim
		if ad == 0 {
			ad = 16
		}
		feat = &core.ConcatFeatures{Srcs: []core.FeatureSource{core.NewAttrFeatures(p.G, ad), feat}}
	}
	enc := newSAGEEncoder(feat, cfg, rng)
	tc := core.TrainerConfig{EdgeType: cfg.EdgeType, HopNums: cfg.HopNums, Batch: cfg.Batch, NegK: cfg.NegK, LR: cfg.LR}
	inner, err := core.NewLinkTrainerOver(core.NewLocalEnv(p.G, rng), p.src, enc, tc, rng)
	if err != nil {
		panic(err) // local env never fails
	}
	return withPipeline(&Trainer{inner: inner}, cfg)
}

// ---------------------------------------------------------------------------
// Distributed platform

// ClusterPlatform is the distributed counterpart of Platform: the same
// sampling and training seams, served by graph shards behind a
// cluster.Transport (in-process servers or live net/rpc) through a routing,
// caching cluster.Client. Because the client implements the batch-first
// sampling.Source contract, every layer above it — NEIGHBORHOOD sampling,
// the encoder, the link trainer — is byte-for-byte the code that runs
// locally.
type ClusterPlatform struct {
	Client *cluster.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClusterPlatform wires a worker's view of a sharded graph: assign maps
// vertices to partitions, t reaches the per-partition servers, and cache
// (nil to disable) short-circuits remote hops per Section 3.2.
func NewClusterPlatform(assign *partition.Assignment, t cluster.Transport, cache storage.NeighborCache, seed int64) *ClusterPlatform {
	return &ClusterPlatform{
		Client: cluster.NewClient(assign, t, cache),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (p *ClusterPlatform) newRng() *rand.Rand {
	p.mu.Lock()
	defer p.mu.Unlock()
	return rand.New(rand.NewSource(p.rng.Int63()))
}

// NumVertices reports the size of the sharded graph's vertex universe.
func (p *ClusterPlatform) NumVertices() int { return len(p.Client.Assign.Of) }

// Neighborhood returns a NEIGHBORHOOD sampler over the cluster: each hop of
// a batch costs at most one SampleNeighbors RPC per owning server.
func (p *ClusterPlatform) Neighborhood() *sampling.Neighborhood {
	return sampling.NewNeighborhood(p.Client, p.newRng())
}

// CacheRate reports the fraction of vertices whose neighborhoods the
// client-side cache holds.
func (p *ClusterPlatform) CacheRate() float64 {
	return storage.CacheRate(p.Client.Cache, p.NumVertices())
}

// clusterAttrFeatures serves hop-0 attribute rows through batched Attrs
// RPCs (with per-server sub-batching and dedup in the client), optionally
// behind a client-side LRU over hot vertices (TrainConfig.AttrCache). A
// fetch failure yields zero rows for the batch — the feature interface has
// no error path — so transient shard outages degrade the features instead
// of crashing training.
//
// It implements core.PrefetchingFeatures: the prefetch pipeline fetches a
// future batch's rows on its worker goroutines and the trainer serves them
// at encode time, so attribute RPC latency hides behind compute.
type clusterAttrFeatures struct {
	fetch cluster.AttrFetcher
	d     int

	// prefetched, when set, answers Rows without touching the network
	// (installed around one batch's encodes by the consuming goroutine).
	prefetched map[ID][]float64
}

func (f *clusterAttrFeatures) Dim() int { return f.d }

func (f *clusterAttrFeatures) Rows(t *nn.Tape, vs []ID) *nn.Node {
	m := tensor.New(len(vs), f.d)
	fill := func(i int, a []float64) {
		row := m.Row(i)
		for j := 0; j < len(a) && j < f.d; j++ {
			row[j] = a[j]
		}
	}
	// Serve what the batch prefetched; anything missing (contexts sampled
	// outside the pipeline, e.g. by a ContextFn) falls through to one
	// batched fetch.
	var missing []ID
	var missingIdx []int
	for i, v := range vs {
		if a, ok := f.prefetched[v]; ok {
			fill(i, a)
			continue
		}
		missing = append(missing, v)
		missingIdx = append(missingIdx, i)
	}
	if len(missing) > 0 {
		if attrs, err := f.fetch.Attrs(missing); err == nil {
			for k, a := range attrs {
				fill(missingIdx[k], a)
			}
		}
	}
	return t.Input(m)
}

func (f *clusterAttrFeatures) Params() []*nn.Param { return nil }

// PrefetchAttrs implements core.PrefetchingFeatures; safe for concurrent
// use (the fetcher is). Pinned batches read their snapshot's attribute
// rows.
func (f *clusterAttrFeatures) PrefetchAttrs(vs []ID, pin *sampling.Pin, into map[ID][]float64) error {
	attrs, err := f.fetch.AttrsAt(vs, pin)
	if err != nil {
		return err
	}
	for i, v := range vs {
		into[v] = attrs[i]
	}
	return nil
}

// ServePrefetched implements core.PrefetchingFeatures.
func (f *clusterAttrFeatures) ServePrefetched(rows map[ID][]float64) { f.prefetched = rows }

// NewGraphSAGE assembles the same GraphSAGE-style model as
// Platform.NewGraphSAGE, trained end to end against the shards: TRAVERSE
// batches via per-server edge draws, negatives from merged per-server
// destination counts, neighbor expansion via SampleNeighbors RPCs, and
// (with UseAttrs) hop-0 features via batched Attrs RPCs.
func (p *ClusterPlatform) NewGraphSAGE(cfg TrainConfig) (*Trainer, error) {
	rng := p.newRng()
	var feat core.FeatureSource = core.NewTableFeatures("emb", p.NumVertices(), cfg.Dim, rng)
	if cfg.UseAttrs {
		ad := cfg.AttrDim
		if ad == 0 {
			ad = 16
		}
		var fetch cluster.AttrFetcher = p.Client
		if cfg.AttrCache > 0 {
			fetch = cluster.NewAttrCache(p.Client, cfg.AttrCache)
		}
		feat = &core.ConcatFeatures{Srcs: []core.FeatureSource{&clusterAttrFeatures{fetch: fetch, d: ad}, feat}}
	}
	enc := newSAGEEncoder(feat, cfg, rng)
	tc := core.TrainerConfig{EdgeType: cfg.EdgeType, HopNums: cfg.HopNums, Batch: cfg.Batch, NegK: cfg.NegK, LR: cfg.LR, NegRefresh: cfg.NegRefresh}
	p.mu.Lock()
	envSeed := p.rng.Int63()
	p.mu.Unlock()
	inner, err := core.NewLinkTrainerOver(cluster.NewEnv(p.Client, envSeed), p.Client, enc, tc, rng)
	if err != nil {
		return nil, fmt.Errorf("aligraph: cluster trainer: %w", err)
	}
	return withPipeline(&Trainer{inner: inner, releasePins: p.Client.ReleaseIdlePins}, cfg), nil
}

// UpdateFeed supplies live graph mutations to a streaming trainer; see
// core.UpdateFeed and cluster.UpdateStream.
type UpdateFeed = core.UpdateFeed

// StreamConfig tunes how a streaming trainer interleaves updates with
// training batches.
type StreamConfig = core.StreamConfig

// NewUpdateStream creates the platform's live-update feed: Push (or
// PushEdges) mutation batches onto it from any goroutine, and a trainer
// with StreamUpdates installed applies them between training batches.
func (p *ClusterPlatform) NewUpdateStream() *cluster.UpdateStream {
	return cluster.NewUpdateStream(p.Client.T)
}

// StreamUpdates turns the trainer into a live-graph trainer: pending update
// batches from feed are applied between training batches (cfg controls the
// cadence), training reads keep their per-batch snapshot pins, and every
// completed batch remains snapshot-consistent while the graph changes
// underneath. Call before training starts. Returns the installed stream
// source (its Applied counter reports ingest progress).
func (t *Trainer) StreamUpdates(feed UpdateFeed, cfg StreamConfig) *core.StreamSource {
	ss := core.NewStreamSource(t.inner.Source(), feed, cfg)
	t.inner.SetSource(ss)
	t.stream = ss
	return ss
}

// Train runs steps mini-batches and returns the per-step losses.
func (t *Trainer) Train(steps int) ([]float64, error) { return t.inner.Train(steps) }

// Embed returns embeddings for the given vertices.
func (t *Trainer) Embed(vs []ID) (*Matrix, error) { return t.inner.Embed(vs) }

// EmbedCtx is Embed plus the sampled neighborhood context the embeddings
// were computed from; the serving tier records it as each embedding's
// dependency set for scoped cache invalidation.
func (t *Trainer) EmbedCtx(vs []ID) (*Matrix, *sampling.Context, error) { return t.inner.EmbedCtx(vs) }

// EmbedAll returns embeddings for every vertex in ID order.
func (t *Trainer) EmbedAll() (*Matrix, error) { return t.inner.EmbedAll() }

// Score returns the dot-product link score of (u, v).
func (t *Trainer) Score(u, v ID) (float64, error) { return t.inner.Score(u, v) }

// ---------------------------------------------------------------------------
// Online serving tier

// Serving-tier re-exports; see internal/serve for the full semantics.
type (
	// ServeConfig tunes the inference tier (flush window, batch cap,
	// staleness budget, cache capacity, refresher cadence).
	ServeConfig = serve.Config
	// InferenceServer answers coalesced Embed / Score / TopK lookups over
	// a trained encoder with epoch-aware embedding caching.
	InferenceServer = serve.Server
	// ServeStats snapshots the tier's counters.
	ServeStats = serve.Stats
	// Scored is one TopK result.
	Scored = serve.Scored
)

// Serve starts the online inference tier over a trained model: concurrent
// lookups coalesce into pipelined encoder mini-batches, cached embeddings
// are served while provably fresh against the shards' update epochs, and
// updates pushed through InferenceServer.ApplyUpdate invalidate exactly the
// touched vertices' cached in-neighborhoods. Close the returned server
// before the trainer. Inference must not overlap a training Step.
func (p *ClusterPlatform) Serve(t *Trainer, cfg ServeConfig) *InferenceServer {
	return serve.New(t.inner, p.Client, cfg)
}

// Serve starts the inference tier over a local in-memory platform. The
// in-process graph is immutable, so cached embeddings never expire and no
// validity tracking runs; coalescing and the LRU cache still apply. When
// cfg.Importance is unset it defaults to the graph's 2-hop Imp^(k) scores
// (the same signal the neighbor-side importance cache admits by), so
// eviction and refresh ranking prefer hub vertices out of the box.
func (p *Platform) Serve(t *Trainer, cfg ServeConfig) *InferenceServer {
	if cfg.Importance == nil {
		imps := p.G.ImportanceAll(2)
		cfg.Importance = func(v ID) float64 {
			if int(v) < len(imps) {
				return imps[v]
			}
			return 0
		}
	}
	return serve.New(t.inner, nil, cfg)
}
