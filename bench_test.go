package aligraph

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 5), plus the DESIGN.md ablations. Each benchmark regenerates its
// experiment through internal/bench and reports the formatted table via
// b.Log, so `go test -bench=. -benchmem` reproduces the full evaluation.
//
// Scale: set ALIGRAPH_BENCH_SCALE (default 0.1) to grow or shrink the
// synthetic datasets. The paper's absolute numbers come from a production
// cluster; these runs preserve the comparison shapes.

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/partition"
	"repro/internal/storage"
)

func benchScale() float64 {
	if s := os.Getenv("ALIGRAPH_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.1
}

func BenchmarkTable3_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Table3(benchScale())
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkTable6_AlgoDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Table6(benchScale())
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkFigure7_GraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure7(benchScale(), []int{1, 2, 4, 8})
		if i == 0 {
			b.Log("\n" + bench.FormatFigure7(rows) + bench.GOMAXPROCSNote())
		}
	}
}

func BenchmarkFigure8_CacheRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure8(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatFigure8(rows))
		}
	}
}

func BenchmarkFigure9_CacheStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure9(benchScale(), 0)
		if i == 0 {
			b.Log("\n" + bench.FormatFigure9(rows))
		}
	}
}

func BenchmarkTable4_Sampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table4(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable4(rows))
		}
	}
}

func BenchmarkTable5_Operators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table5(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable5(rows))
		}
	}
}

func BenchmarkTable7_AHEP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table7(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable7(rows))
		}
	}
}

func BenchmarkFigure10_AHEPCost(b *testing.B) {
	// Figure 10 shares Table 7's cost columns (time and memory per batch).
	for i := 0; i < b.N; i++ {
		rows := bench.Table7(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable7(rows))
		}
	}
}

func BenchmarkTable8_GATNE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table8(benchScale(), false)
		if i == 0 {
			b.Log("\n" + bench.FormatTable8(rows))
		}
	}
}

func BenchmarkTable9_Mixture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table9(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable9(rows))
		}
	}
}

func BenchmarkTable10_Hierarchical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table10(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable10(rows))
		}
	}
}

func BenchmarkTable11_Evolving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table11(benchScale() * 5)
		if i == 0 {
			b.Log("\n" + bench.FormatTable11(rows))
		}
	}
}

func BenchmarkTable12_Bayesian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table12(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable12(rows))
		}
	}
}

func BenchmarkFigure1_Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		rows := bench.Figure1(
			bench.Table8(s, false),
			bench.Table9(s),
			bench.Table10(s),
			bench.Table11(s*5),
			bench.Table12(s),
		)
		if i == 0 {
			b.Log("\n" + bench.FormatFigure1(rows))
		}
	}
}

// BenchmarkTrainStep measures one GraphSAGE training step with and without
// the prefetching mini-batch pipeline, locally and against sharded servers
// behind a latency-injecting transport (200µs per call, simulating a
// network round trip). The cluster/prefetch=4 case is the paper's Section
// 4.1 overlap: per-step wall clock should approach pure compute because
// sampling RPCs for future batches run while the optimizer consumes the
// current one.
func BenchmarkTrainStep(b *testing.B) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.05))
	trainCfg := func(depth int) TrainConfig {
		cfg := DefaultTrainConfig()
		cfg.HopNums = []int{3, 2}
		cfg.Batch = 32
		cfg.UseAttrs = true
		cfg.Pipeline = PipelineConfig{Depth: depth, Workers: 4}
		return cfg
	}
	run := func(b *testing.B, trainer *Trainer) {
		b.Helper()
		defer trainer.Close()
		if _, err := trainer.Train(2); err != nil { // warm lazy pools and caches
			b.Fatal(err)
		}
		b.ResetTimer()
		if _, err := trainer.Train(b.N); err != nil {
			b.Fatal(err)
		}
	}

	for _, depth := range []int{0, 4} {
		b.Run(fmt.Sprintf("local/prefetch=%d", depth), func(b *testing.B) {
			p, err := NewPlatform(g, DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			run(b, p.NewGraphSAGE(trainCfg(depth)))
		})
	}

	// Cluster variants: shards x prefetch x fan-out mode. fanout=seq issues
	// per-shard RPCs one after another (a hop costs shards x RTT); fanout=par
	// scatters them concurrently (max RTT) — the headline comparison for the
	// scatter-gather fan-out, and it compounds with prefetch overlap.
	for _, shards := range []int{2, 4} {
		assign, err := (partition.HashPartitioner{}).Partition(g, shards)
		if err != nil {
			b.Fatal(err)
		}
		servers := cluster.FromGraph(g, assign)
		for _, depth := range []int{0, 4} {
			for _, mode := range []string{"seq", "par"} {
				b.Run(fmt.Sprintf("cluster/shards=%d/prefetch=%d/fanout=%s", shards, depth, mode), func(b *testing.B) {
					tr := cluster.NewLatencyTransport(cluster.NewLocalTransport(servers, -1, 0), 200*time.Microsecond)
					cp := NewClusterPlatform(assign, tr, storage.NewImportanceCacheTopFraction(g, 2, 0.2), 1)
					if mode == "seq" {
						cp.Client.Fanout = 1
					}
					trainer, err := cp.NewGraphSAGE(trainCfg(depth))
					if err != nil {
						b.Fatal(err)
					}
					run(b, trainer)
				})
			}
		}
	}
}

func BenchmarkAblation_LockFreeBuckets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.AblationLockFree(20000, 8)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkAblation_AttrStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.AblationAttrStorage(benchScale())
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkAblation_Partitioners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.AblationPartitioners(benchScale(), 4)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkAblation_NegativeSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.AblationNegativeSampling(10000, 50000)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}
