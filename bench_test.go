package aligraph

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 5), plus the DESIGN.md ablations. Each benchmark regenerates its
// experiment through internal/bench and reports the formatted table via
// b.Log, so `go test -bench=. -benchmem` reproduces the full evaluation.
//
// Scale: set ALIGRAPH_BENCH_SCALE (default 0.1) to grow or shrink the
// synthetic datasets. The paper's absolute numbers come from a production
// cluster; these runs preserve the comparison shapes.

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/bench"
)

func benchScale() float64 {
	if s := os.Getenv("ALIGRAPH_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.1
}

func BenchmarkTable3_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Table3(benchScale())
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkTable6_AlgoDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Table6(benchScale())
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkFigure7_GraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure7(benchScale(), []int{1, 2, 4, 8})
		if i == 0 {
			b.Log("\n" + bench.FormatFigure7(rows) + bench.GOMAXPROCSNote())
		}
	}
}

func BenchmarkFigure8_CacheRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure8(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatFigure8(rows))
		}
	}
}

func BenchmarkFigure9_CacheStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure9(benchScale(), 0)
		if i == 0 {
			b.Log("\n" + bench.FormatFigure9(rows))
		}
	}
}

func BenchmarkTable4_Sampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table4(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable4(rows))
		}
	}
}

func BenchmarkTable5_Operators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table5(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable5(rows))
		}
	}
}

func BenchmarkTable7_AHEP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table7(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable7(rows))
		}
	}
}

func BenchmarkFigure10_AHEPCost(b *testing.B) {
	// Figure 10 shares Table 7's cost columns (time and memory per batch).
	for i := 0; i < b.N; i++ {
		rows := bench.Table7(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable7(rows))
		}
	}
}

func BenchmarkTable8_GATNE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table8(benchScale(), false)
		if i == 0 {
			b.Log("\n" + bench.FormatTable8(rows))
		}
	}
}

func BenchmarkTable9_Mixture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table9(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable9(rows))
		}
	}
}

func BenchmarkTable10_Hierarchical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table10(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable10(rows))
		}
	}
}

func BenchmarkTable11_Evolving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table11(benchScale() * 5)
		if i == 0 {
			b.Log("\n" + bench.FormatTable11(rows))
		}
	}
}

func BenchmarkTable12_Bayesian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table12(benchScale())
		if i == 0 {
			b.Log("\n" + bench.FormatTable12(rows))
		}
	}
}

func BenchmarkFigure1_Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		rows := bench.Figure1(
			bench.Table8(s, false),
			bench.Table9(s),
			bench.Table10(s),
			bench.Table11(s*5),
			bench.Table12(s),
		)
		if i == 0 {
			b.Log("\n" + bench.FormatFigure1(rows))
		}
	}
}

func BenchmarkAblation_LockFreeBuckets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.AblationLockFree(20000, 8)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkAblation_AttrStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.AblationAttrStorage(benchScale())
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkAblation_Partitioners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.AblationPartitioners(benchScale(), 4)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkAblation_NegativeSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.AblationNegativeSampling(10000, 50000)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}
