// Command aligraph-serve runs the online inference tier against live
// aligraph-server shards: it bootstraps graph-free from the cluster, trains
// a GraphSAGE encoder for a warm-up number of steps, then answers embedding
// / link-score / top-k lookups with request coalescing and an epoch-aware
// embedding cache (see internal/serve).
//
// Two retry transports are dialed over one connection pool sharing a single
// per-shard breaker view: the lookup path and the churn pusher observe the
// same shard health, so an outage detected by either side fast-fails both
// instead of each re-probing the dead shard.
//
// With -load N the built-in generator issues N lookups at -concurrency
// workers — optionally against live churn (-churn in-band|out-of-band) —
// prints qps, p50/p99 latency, cache hit rate and staleness counters, and
// exits (the CI smoke mode). With -http the same surface is served over
// HTTP: /embed?v=3, /score?u=1&v=2, /topk?src=1&k=5, /stats. -metrics-addr
// exposes the full observability registry (client RPC and per-hop sampling
// metrics plus the tier's lookup/flush histograms) at /metrics and
// /metrics.json; -stats prints the client's per-method and per-(edge type,
// hop) breakdown at shutdown.
//
// Usage:
//
//	aligraph-serve -cluster 127.0.0.1:7701,127.0.0.1:7702 -train-steps 50 \
//	    -load 2000 -concurrency 8 -churn in-band
//	aligraph-serve -cluster 127.0.0.1:7701,127.0.0.1:7702 -http :8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	aligraph "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/storage"
)

func main() {
	var (
		clusterAddrs = flag.String("cluster", "", "comma-separated graph-server addresses (required)")
		trainSteps   = flag.Int("train-steps", 100, "warm-up training mini-batches before serving")
		dim          = flag.Int("dim", 32, "embedding dimension")
		edgeType     = flag.Int("edge-type", 0, "edge type to embed over")
		useAttrs     = flag.Bool("attrs", true, "feed vertex attributes to the encoder")
		cacheFrac    = flag.Float64("cache", 0.2, "LRU neighbor-cached vertex fraction")
		flushWindow  = flag.Duration("flush-window", time.Millisecond, "coalescer flush window")
		maxBatch     = flag.Int("max-batch", 64, "max deduplicated vertices per encoder batch")
		maxLag       = flag.Uint64("max-lag", 8, "staleness budget in update epochs")
		cacheCap     = flag.Int("cache-cap", 4096, "embedding cache capacity")
		refresh      = flag.Duration("refresh", 50*time.Millisecond, "background refresher period (0 disables)")
		httpAddr     = flag.String("http", "", "serve HTTP lookups on this address")
		load         = flag.Int("load", 0, "issue N lookups from the built-in generator, print metrics, exit")
		concurrency  = flag.Int("concurrency", 8, "load-generator workers")
		churn        = flag.String("churn", "", "push one synthetic edge update per 10 lookups: 'in-band' (through the tier, scoped invalidation) or 'out-of-band' (directly to shards, refresher-driven)")
		rpcTimeout   = flag.Duration("rpc-timeout", 5*time.Second, "per-RPC deadline")
		rpcRetries   = flag.Int("rpc-retries", 4, "attempts per idempotent RPC")
		stats        = flag.Bool("stats", false, "print per-RPC client metrics (per-method and per-hop) at shutdown")
		metricsAddr  = flag.String("metrics-addr", "", "serve observability on this address (/metrics text, /metrics.json, /debug/pprof/)")
	)
	flag.Parse()
	if *clusterAddrs == "" {
		log.Fatal("-cluster is required (aligraph-serve is the inference tier of a live cluster)")
	}
	if *load == 0 && *httpAddr == "" {
		log.Fatal("nothing to do: pass -load N and/or -http addr")
	}

	addrs := strings.Split(*clusterAddrs, ",")
	rpcTr, err := cluster.DialRPC(addrs)
	if err != nil {
		log.Fatal(err)
	}
	pol := cluster.DefaultCallPolicy()
	pol.Timeout = *rpcTimeout
	pol.Attempts = *rpcRetries
	// One shared breaker view across both transports: lookups and the churn
	// pusher agree on which shards are down.
	health := cluster.NewShardHealth(len(addrs))
	lookupT := cluster.NewRetryTransportShared(rpcTr, pol, 1, health)
	defer lookupT.Close()
	pushT := cluster.NewRetryTransportShared(rpcTr, pol, 2, health)

	assign, schema, err := cluster.Bootstrap(lookupT, 0)
	if err != nil {
		log.Fatal(err)
	}
	numVertices := len(assign.Of)
	var cache storage.NeighborCache
	if *cacheFrac > 0 {
		cache = storage.NewLRUNeighborCache(int(*cacheFrac * float64(numVertices)))
	}
	cp := aligraph.NewClusterPlatform(assign, lookupT, cache, 1)
	fmt.Printf("cluster: %d shards, %d vertices, %d vertex / %d edge types (bootstrapped)\n",
		assign.P, numVertices, schema.NumVertexTypes(), schema.NumEdgeTypes())

	// One registry for the whole process: the cluster client's RPC and
	// per-(edge type, hop) sampling metrics plus the serving tier's counters.
	reg := obs.NewRegistry()
	cp.Client.RegisterObs(reg)
	if *stats {
		defer func() { fmt.Printf("client metrics:\n%s", cp.Client.Metrics()) }()
	}

	tc := aligraph.DefaultTrainConfig()
	tc.Dim = *dim
	tc.EdgeType = aligraph.EdgeType(*edgeType)
	tc.UseAttrs = *useAttrs
	trainer, err := cp.NewGraphSAGE(tc)
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()
	start := time.Now()
	losses, err := trainer.Train(*trainSteps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm-up: %d steps in %v, loss %.4f -> %.4f\n",
		*trainSteps, time.Since(start).Round(time.Millisecond), losses[0], losses[len(losses)-1])

	srv := cp.Serve(trainer, aligraph.ServeConfig{
		FlushWindow:  *flushWindow,
		MaxBatch:     *maxBatch,
		MaxLag:       *maxLag,
		CacheCap:     *cacheCap,
		RefreshEvery: *refresh,
		EdgeType:     aligraph.EdgeType(*edgeType),
	})
	defer srv.Close()
	trainer.RegisterObs(reg)
	srv.RegisterObs(reg)
	if *metricsAddr != "" {
		msrv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", msrv.Addr)
	}

	if *load > 0 {
		runLoad(srv, cp, pushT, assign.P, numVertices, aligraph.EdgeType(*edgeType), *load, *concurrency, *churn)
		if *httpAddr == "" {
			return
		}
	}
	serveHTTP(srv, *httpAddr, numVertices)
}

// runLoad drives the tier at the requested concurrency, optionally pushing
// synthetic churn, and prints the serving metrics the CI smoke asserts on.
func runLoad(srv *aligraph.InferenceServer, cp *aligraph.ClusterPlatform, pushT cluster.Transport,
	parts, numVertices int, et aligraph.EdgeType, load, concurrency int, churn string) {
	var (
		wg     sync.WaitGroup
		issued atomic.Int64
		mu     sync.Mutex
		lats   []time.Duration
	)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local []time.Duration
			for {
				i := issued.Add(1)
				if i > int64(load) {
					break
				}
				v := aligraph.ID(rng.Intn(numVertices))
				t0 := time.Now()
				var err error
				if i%5 == 0 {
					_, err = srv.Score(v, aligraph.ID(rng.Intn(numVertices)))
				} else {
					_, err = srv.Embed(v)
				}
				if err != nil {
					log.Fatalf("lookup: %v", err)
				}
				local = append(local, time.Since(t0))
				if churn != "" && i%10 == 0 {
					add := []cluster.RawEdge{{
						Src:    aligraph.ID(rng.Intn(numVertices)),
						Dst:    aligraph.ID(rng.Intn(numVertices)),
						Type:   et,
						Weight: 1,
					}}
					switch churn {
					case "in-band":
						if _, err := srv.ApplyUpdate(add, nil, nil); err != nil {
							log.Fatalf("in-band update: %v", err)
						}
					case "out-of-band":
						// Straight to the owning shard over the push
						// transport: the tier only learns of it from the
						// refresher's head probes.
						var ur cluster.UpdateReply
						p := cp.Client.Assign.Part(add[0].Src)
						if err := pushT.Update(p, cluster.UpdateRequest{Add: add}, &ur); err != nil {
							log.Fatalf("out-of-band update: %v", err)
						}
					default:
						log.Fatalf("unknown -churn mode %q", churn)
					}
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(int64(w + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st := srv.Stats()
	fmt.Printf("load: %d lookups, %d workers, %v\n", load, concurrency, elapsed.Round(time.Millisecond))
	fmt.Printf("  qps        %.0f\n", float64(load)/elapsed.Seconds())
	if len(lats) > 0 {
		fmt.Printf("  p50        %v\n", lats[len(lats)/2].Round(time.Microsecond))
		fmt.Printf("  p99        %v\n", lats[len(lats)*99/100].Round(time.Microsecond))
	}
	fmt.Printf("  hit-rate   %.3f (%d hits / %d requests)\n", st.HitRate(), st.Cache.Hits, st.Requests)
	fmt.Printf("  batches    %d (%d vertices embedded, %.1f per flush)\n",
		st.Batches, st.Embedded, float64(st.Embedded)/float64(max64(st.Batches, 1)))
	fmt.Printf("  staleness  %d stale-rejects, %d invalidated, %d refreshed, %d revalidated\n",
		st.Cache.StaleRejects, st.Invalidated, st.Refreshed, st.Revalidated)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// serveHTTP exposes the lookup surface over HTTP until the process dies.
func serveHTTP(srv *aligraph.InferenceServer, addr string, numVertices int) {
	vertex := func(r *http.Request, key string) (aligraph.ID, error) {
		n, err := strconv.Atoi(r.URL.Query().Get(key))
		if err != nil || n < 0 || n >= numVertices {
			return 0, fmt.Errorf("bad vertex %q", r.URL.Query().Get(key))
		}
		return aligraph.ID(n), nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/embed", func(w http.ResponseWriter, r *http.Request) {
		v, err := vertex(r, "v")
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		vec, err := srv.Embed(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(vec)
	})
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		u, err1 := vertex(r, "u")
		v, err2 := vertex(r, "v")
		if err1 != nil || err2 != nil {
			http.Error(w, "need u and v", http.StatusBadRequest)
			return
		}
		s, err := srv.Score(u, v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(s)
	})
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		src, err := vertex(r, "src")
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		k, _ := strconv.Atoi(r.URL.Query().Get("k"))
		if k <= 0 {
			k = 10
		}
		var cands []aligraph.ID
		if cs := r.URL.Query().Get("cands"); cs != "" {
			for _, c := range strings.Split(cs, ",") {
				n, err := strconv.Atoi(c)
				if err != nil || n < 0 || n >= numVertices {
					http.Error(w, fmt.Sprintf("bad candidate %q", c), http.StatusBadRequest)
					return
				}
				cands = append(cands, aligraph.ID(n))
			}
		} else {
			for v := 0; v < numVertices; v++ {
				if aligraph.ID(v) != src {
					cands = append(cands, aligraph.ID(v))
				}
			}
		}
		top, err := srv.TopK(src, cands, k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(top)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(srv.Stats())
	})
	fmt.Printf("serving lookups on %s\n", addr)
	log.Fatal(http.ListenAndServe(addr, mux))
}
