// Command aligraph-server runs one graph-server partition over net/rpc.
// It loads a TSV graph (or generates Taobao-sim with -demo), partitions it,
// keeps the shard selected by -part, and serves the batched RPC surface —
// Neighbors/Attrs fetches plus the sampling RPCs behind distributed
// training (SampleNeighbors fixed-width draws with server-side weighted
// alias tables, SampleEdges, NegativePool, Stats), the Update RPC applying
// atomic live mutation batches onto the shard's multi-version snapshot
// store, the Lease/Release RPCs that let training clients pin a
// consistent epoch while updates stream in, and the Compact RPC folding
// old snapshot overlays into a fresh base — until interrupted. Compaction
// also self-triggers on an overlay-size threshold (-compact-threshold), so
// a server under an unbounded update stream runs in bounded memory:
// overlays behind the retention window fold into the base while leased
// epochs stay readable and clients observe nothing. -metrics-addr serves
// the shard's observability registry (per-RPC latency histograms,
// snapshot-store gauges) at /metrics, /metrics.json and /debug/pprof/. A full cluster is one
// aligraph-server process per partition; clients dial all of them
// (`aligraph-train -cluster [-stream]`, or see examples/distributed for
// the in-process equivalent).
//
// Usage:
//
//	aligraph-server -demo -partitions 2 -part 0 -addr 127.0.0.1:7701
//	aligraph-server -vertices v.tsv -edges e.tsv -vertex-types user,item \
//	    -edge-types click,buy -partitions 4 -part 2 -addr :7703 \
//	    -compact-threshold 200000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/partition"
)

func main() {
	var (
		verticesPath = flag.String("vertices", "", "vertex TSV path")
		edgesPath    = flag.String("edges", "", "edge TSV path")
		vertexTypes  = flag.String("vertex-types", "vertex", "comma-separated vertex type names")
		edgeTypes    = flag.String("edge-types", "edge", "comma-separated edge type names")
		directed     = flag.Bool("directed", true, "treat edges as directed")
		partitioner  = flag.String("partitioner", "hash", "metis|streaming|hash|edgecut")
		partitions   = flag.Int("partitions", 1, "total number of partitions")
		part         = flag.Int("part", 0, "which partition this server owns")
		addr         = flag.String("addr", "127.0.0.1:7700", "listen address")
		demo         = flag.Bool("demo", false, "generate Taobao-sim instead of reading files")
		scale        = flag.Float64("scale", 0.1, "demo dataset scale")
		compactThr   = flag.Int("compact-threshold", 100000, "fold old snapshot overlays into a fresh base once the head overlay holds this many entries (0 disables auto-compaction; the Compact RPC always works)")
		compactGap   = flag.Duration("compact-interval", 0, "minimum time between threshold-triggered background folds (0 = fold as soon as signaled)")
		dedupWindow  = flag.Int("dedup-window", 1024, "retried-RPC idempotency tokens remembered per server (0 disables write dedup)")
		metricsAddr  = flag.String("metrics-addr", "", "serve observability on this address (/metrics text, /metrics.json, /debug/pprof/)")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *demo:
		g = dataset.Taobao(dataset.TaobaoSmallConfig(*scale))
	case *verticesPath != "" && *edgesPath != "":
		schema, err := graph.NewSchema(strings.Split(*vertexTypes, ","), strings.Split(*edgeTypes, ","))
		if err != nil {
			log.Fatal(err)
		}
		l := graphio.NewLoader(schema, *directed)
		vf, err := os.Open(*verticesPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := l.ReadVertices(vf); err != nil {
			log.Fatal(err)
		}
		vf.Close()
		ef, err := os.Open(*edgesPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := l.ReadEdges(ef); err != nil {
			log.Fatal(err)
		}
		ef.Close()
		g, _ = l.Finalize()
	default:
		log.Fatal("need -vertices and -edges, or -demo")
	}
	if *part < 0 || *part >= *partitions {
		log.Fatalf("-part %d out of range for %d partitions", *part, *partitions)
	}

	pt, err := partition.ByName(*partitioner)
	if err != nil {
		log.Fatal(err)
	}
	a, err := pt.Partition(g, *partitions)
	if err != nil {
		log.Fatal(err)
	}
	servers := cluster.FromGraph(g, a)
	srv := servers[*part]
	srv.SetCompactThreshold(*compactThr)
	srv.SetCompactInterval(*compactGap)
	srv.SetUpdateDedup(*dedupWindow)

	rpcSrv, err := cluster.ServeRPC(srv, *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligraph-server: partition %d/%d on %s (%d vertices, %d edges)\n",
		*part, *partitions, rpcSrv.Addr(), srv.NumLocalVertices(), srv.NumLocalEdges())

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.RegisterObs(reg)
		msrv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		fmt.Printf("aligraph-server: metrics on http://%s/metrics\n", msrv.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	rpcSrv.Close()
	fmt.Println("aligraph-server: shut down")
}
