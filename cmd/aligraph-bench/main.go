// Command aligraph-bench regenerates the paper's evaluation tables and
// figures from the command line. Each experiment preserves the paper's
// comparison shape; absolute numbers reflect the laptop-scale simulator.
//
// Usage:
//
//	aligraph-bench -experiment all -scale 0.1
//	aligraph-bench -experiment table8
//	aligraph-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
)

var experiments = map[string]func(scale float64) string{
	"table3":  bench.Table3,
	"table6":  bench.Table6,
	"figure7": func(s float64) string { return bench.FormatFigure7(bench.Figure7(s, nil)) },
	"figure8": func(s float64) string { return bench.FormatFigure8(bench.Figure8(s)) },
	"figure9": func(s float64) string { return bench.FormatFigure9(bench.Figure9(s, 0)) },
	"table4":  func(s float64) string { return bench.FormatTable4(bench.Table4(s)) },
	"table5":  func(s float64) string { return bench.FormatTable5(bench.Table5(s)) },
	"table7":  func(s float64) string { return bench.FormatTable7(bench.Table7(s)) },
	"table8":  func(s float64) string { return bench.FormatTable8(bench.Table8(s, false)) },
	"table9":  func(s float64) string { return bench.FormatTable9(bench.Table9(s)) },
	"table10": func(s float64) string { return bench.FormatTable10(bench.Table10(s)) },
	"table11": func(s float64) string { return bench.FormatTable11(bench.Table11(s * 5)) },
	"table12": func(s float64) string { return bench.FormatTable12(bench.Table12(s)) },
	"figure1": func(s float64) string {
		return bench.FormatFigure1(bench.Figure1(
			bench.Table8(s, false), bench.Table9(s), bench.Table10(s),
			bench.Table11(s*5), bench.Table12(s)))
	},
	"ablations": func(s float64) string {
		return bench.AblationLockFree(20000, 8) +
			bench.AblationAttrStorage(s) +
			bench.AblationPartitioners(s, 4) +
			bench.AblationNegativeSampling(10000, 50000)
	},
}

func names() []string {
	out := make([]string, 0, len(experiments))
	for k := range experiments {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	exp := flag.String("experiment", "all", "experiment to run (or 'all')")
	scale := flag.Float64("scale", 0.1, "dataset scale factor")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, n := range names() {
			fmt.Println(n)
		}
		return
	}
	if *exp == "all" {
		for _, n := range names() {
			fmt.Println(experiments[n](*scale))
		}
		return
	}
	fn, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	fmt.Println(fn(*scale))
}
