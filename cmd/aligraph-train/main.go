// Command aligraph-train trains a GraphSAGE-style encoder on a TSV graph
// (or a generated Taobao-sim with -demo) through the public API and writes
// the learned embeddings as TSV (id \t v1,v2,...).
//
// With -cluster the trainer runs against live aligraph-server shards: all
// sampling (TRAVERSE edge batches, NEGATIVE pools, NEIGHBORHOOD expansion
// via the batched SampleNeighbors RPC) and attribute fetches go over the
// wire. The local graph is loaded only to reproduce the deterministic
// partition assignment; -partitioner must match the servers'.
//
// Usage:
//
//	aligraph-train -demo -steps 300 -out embeddings.tsv
//	aligraph-train -vertices v.tsv -edges e.tsv \
//	    -vertex-types user,item -edge-types click,buy -dim 64 -out emb.tsv
//	aligraph-train -demo -cluster 127.0.0.1:7701,127.0.0.1:7702 -steps 300
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	aligraph "repro"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/graphio"
	"repro/internal/partition"
	"repro/internal/storage"
)

func main() {
	var (
		verticesPath = flag.String("vertices", "", "vertex TSV path")
		edgesPath    = flag.String("edges", "", "edge TSV path")
		vertexTypes  = flag.String("vertex-types", "vertex", "comma-separated vertex type names")
		edgeTypes    = flag.String("edge-types", "edge", "comma-separated edge type names")
		directed     = flag.Bool("directed", true, "treat edges as directed")
		demo         = flag.Bool("demo", false, "generate Taobao-sim instead of reading files")
		scale        = flag.Float64("scale", 0.1, "demo dataset scale")
		dim          = flag.Int("dim", 32, "embedding dimension")
		steps        = flag.Int("steps", 200, "training mini-batches")
		lr           = flag.Float64("lr", 0.02, "learning rate")
		edgeType     = flag.Int("edge-type", 0, "edge type to train on")
		useAttrs     = flag.Bool("attrs", true, "feed vertex attributes to the encoder")
		out          = flag.String("out", "embeddings.tsv", "output embeddings TSV")
		clusterAddrs = flag.String("cluster", "", "comma-separated graph-server addresses; train against live RPC shards")
		partitioner  = flag.String("partitioner", "hash", "partitioner used by the servers (cluster mode)")
		cacheFrac    = flag.Float64("cache", 0.2, "importance-cached vertex fraction (cluster mode)")
	)
	flag.Parse()

	var g *aligraph.Graph
	switch {
	case *demo:
		g = dataset.Taobao(dataset.TaobaoSmallConfig(*scale))
	case *verticesPath != "" && *edgesPath != "":
		schema, err := aligraph.NewSchema(strings.Split(*vertexTypes, ","), strings.Split(*edgeTypes, ","))
		if err != nil {
			log.Fatal(err)
		}
		l := graphio.NewLoader(schema, *directed)
		vf, err := os.Open(*verticesPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := l.ReadVertices(vf); err != nil {
			log.Fatal(err)
		}
		vf.Close()
		ef, err := os.Open(*edgesPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := l.ReadEdges(ef); err != nil {
			log.Fatal(err)
		}
		ef.Close()
		g, _ = l.Finalize()
	default:
		log.Fatal("need -vertices and -edges, or -demo")
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	cfg := aligraph.DefaultTrainConfig()
	cfg.Dim = *dim
	cfg.LR = *lr
	cfg.EdgeType = aligraph.EdgeType(*edgeType)
	cfg.UseAttrs = *useAttrs

	var trainer *aligraph.Trainer
	if *clusterAddrs != "" {
		addrs := strings.Split(*clusterAddrs, ",")
		pt, err := partition.ByName(*partitioner)
		if err != nil {
			log.Fatal(err)
		}
		assign, err := pt.Partition(g, len(addrs))
		if err != nil {
			log.Fatal(err)
		}
		tr, err := cluster.DialRPC(addrs)
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		var cache storage.NeighborCache
		if *cacheFrac > 0 {
			cache = storage.NewImportanceCacheTopFraction(g, 2, *cacheFrac)
		}
		cp := aligraph.NewClusterPlatform(assign, tr, cache, 1)
		fmt.Printf("cluster: %d shards, cache rate %.1f%%\n", len(addrs), 100*cp.CacheRate())
		trainer, err = cp.NewGraphSAGE(cfg)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		platform, err := aligraph.NewPlatform(g, aligraph.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		trainer = platform.NewGraphSAGE(cfg)
	}

	start := time.Now()
	losses, err := trainer.Train(*steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d steps in %v: loss %.4f -> %.4f\n",
		*steps, time.Since(start).Round(time.Millisecond), losses[0], losses[len(losses)-1])

	emb, err := trainer.EmbedAll()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := graphio.WriteEmbeddings(f, emb, emb.Rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d x %d embeddings to %s\n", emb.Rows, emb.Cols, *out)
}
