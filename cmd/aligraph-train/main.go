// Command aligraph-train trains a GraphSAGE-style encoder on a TSV graph
// (or a generated Taobao-sim with -demo) through the public API and writes
// the learned embeddings as TSV (id \t v1,v2,...).
//
// With -cluster the trainer runs against live aligraph-server shards: the
// worker starts graph-free — the partition assignment and schema come from
// the cluster's Bootstrap RPC — and all sampling (TRAVERSE edge batches,
// NEGATIVE pools, NEIGHBORHOOD expansion via the batched SampleNeighbors
// RPC) and attribute fetches go over the wire, with hot-vertex neighbor and
// attribute LRUs client-side. -prefetch N assembles N mini-batches ahead of
// the optimizer on parallel workers, overlapping graph-service latency with
// the forward/backward pass.
//
// With -stream (cluster mode only) the trainer trains on a live, changing
// graph: synthetic edge-update batches are interleaved with training
// batches through the streaming BatchSource, each applied batch advances
// the owning shard's epoch, and every training batch stays pinned to one
// consistent snapshot while the updates land.
//
// -metrics-addr serves the process's observability registry live (/metrics
// text, /metrics.json, /debug/pprof/): cluster-client RPC histograms and
// per-(edge type, hop) sampling lanes, plus pipeline stage timings when
// -prefetch is on. -metrics-out writes the final snapshot as JSON at exit.
//
// -plan picks the sampling execution strategy (cluster mode): "adaptive"
// runs the per-(edge type, hop) planner over the live lane metrics,
// re-deciding every -plan-interval between cached client-side draws,
// server-side draws, and the hybrid default — per lane, with per-lane
// cache admission. "hybrid", "client" or "server" force that strategy on
// every lane. Fixed-seed results are bit-identical under every choice;
// only where draws execute (and therefore RPC volume) changes.
//
// Usage:
//
//	aligraph-train -demo -steps 300 -out embeddings.tsv
//	aligraph-train -vertices v.tsv -edges e.tsv \
//	    -vertex-types user,item -edge-types click,buy -dim 64 -out emb.tsv
//	aligraph-train -cluster 127.0.0.1:7701,127.0.0.1:7702 -prefetch 4 -steps 300
//	aligraph-train -cluster 127.0.0.1:7701,127.0.0.1:7702 -stream -prefetch 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	aligraph "repro"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

func main() {
	var (
		verticesPath = flag.String("vertices", "", "vertex TSV path")
		edgesPath    = flag.String("edges", "", "edge TSV path")
		vertexTypes  = flag.String("vertex-types", "vertex", "comma-separated vertex type names")
		edgeTypes    = flag.String("edge-types", "edge", "comma-separated edge type names")
		directed     = flag.Bool("directed", true, "treat edges as directed")
		demo         = flag.Bool("demo", false, "generate Taobao-sim instead of reading files")
		scale        = flag.Float64("scale", 0.1, "demo dataset scale")
		dim          = flag.Int("dim", 32, "embedding dimension")
		steps        = flag.Int("steps", 200, "training mini-batches")
		lr           = flag.Float64("lr", 0.02, "learning rate")
		edgeType     = flag.Int("edge-type", 0, "edge type to train on")
		useAttrs     = flag.Bool("attrs", true, "feed vertex attributes to the encoder")
		out          = flag.String("out", "embeddings.tsv", "output embeddings TSV")
		clusterAddrs = flag.String("cluster", "", "comma-separated graph-server addresses; train against live RPC shards")
		cacheFrac    = flag.Float64("cache", 0.2, "LRU neighbor-cached vertex fraction (cluster mode)")
		prefetch     = flag.Int("prefetch", 0, "mini-batches assembled ahead of the optimizer (0 = synchronous)")
		prefetchWrk  = flag.Int("prefetch-workers", 2, "parallel batch-assembly goroutines when -prefetch > 0")
		stream       = flag.Bool("stream", false, "interleave synthetic live edge updates with training (cluster mode)")
		streamBatch  = flag.Int("stream-batch", 8, "edges per synthetic update batch with -stream")
		streamSeed   = flag.Int64("stream-seed", 7, "randomness seed for -stream update generation")
		rpcTimeout   = flag.Duration("rpc-timeout", 5*time.Second, "per-RPC deadline (cluster mode)")
		rpcRetries   = flag.Int("rpc-retries", 4, "attempts per idempotent RPC before a shard counts as down (cluster mode)")
		dialTimeout  = flag.Duration("dial-timeout", cluster.DefaultDialTimeout, "per-shard TCP connect timeout (cluster mode)")
		lazyDial     = flag.Bool("lazy-dial", false, "connect to shards on first use instead of at startup (cluster mode)")
		degrade      = flag.Bool("degrade", false, "serve a down shard's reads from stale caches instead of failing (cluster mode)")
		negRefresh   = flag.Uint64("neg-refresh", 0, "rebuild the negative pool every N observed update epochs; 0 = frozen pool (cluster mode)")
		fanout       = flag.Int("fanout", 0, "max concurrent per-shard sub-requests per scatter round: 0 = all shards at once, 1 = sequential (cluster mode)")
		planFlag     = flag.String("plan", "", "sampling plan: adaptive, hybrid, client or server; empty = built-in hybrid (cluster mode)")
		planInterval = flag.Duration("plan-interval", 2*time.Second, "adaptive planner decision-window length")
		stats        = flag.Bool("stats", false, "print per-RPC client metrics after training (cluster mode)")
		metricsAddr  = flag.String("metrics-addr", "", "serve observability on this address (/metrics text, /metrics.json, /debug/pprof/)")
		metricsOut   = flag.String("metrics-out", "", "write a final metrics snapshot (JSON) to this file at exit")
	)
	flag.Parse()
	if *stream && *clusterAddrs == "" {
		log.Fatal("-stream requires -cluster (live updates need graph servers)")
	}
	if *planFlag != "" && *clusterAddrs == "" {
		log.Fatal("-plan requires -cluster (plans steer the cluster client's sampling)")
	}

	// One registry names every instrument of this process: the cluster
	// client's per-(edge type, hop) sampling lanes, the pipeline's stage
	// timings, retry/cache gauges. Registered below as the components come up.
	reg := obs.NewRegistry()
	if *metricsOut != "" {
		// Registered first so it runs last, after training and trainer.Close.
		defer func() {
			b, err := reg.Snapshot().JSON()
			if err == nil {
				err = os.WriteFile(*metricsOut, b, 0o644)
			}
			if err != nil {
				log.Printf("metrics-out: %v", err)
			}
		}()
	}
	if *metricsAddr != "" {
		msrv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", msrv.Addr)
	}

	cfg := aligraph.DefaultTrainConfig()
	cfg.Dim = *dim
	cfg.LR = *lr
	cfg.EdgeType = aligraph.EdgeType(*edgeType)
	cfg.UseAttrs = *useAttrs
	cfg.Pipeline = aligraph.PipelineConfig{Depth: *prefetch, Workers: *prefetchWrk}
	cfg.NegRefresh = *negRefresh

	var trainer *aligraph.Trainer
	if *clusterAddrs != "" {
		// Graph-free worker: the assignment and schema come from the shards.
		// The transport stack is fault-tolerant end to end: the RPC layer
		// redials dropped connections lazily, and the retry layer applies
		// per-call deadlines, bounded backoff, and a per-shard breaker to
		// every idempotent call.
		addrs := strings.Split(*clusterAddrs, ",")
		rpcTr, err := cluster.DialRPCConfig(addrs, cluster.DialConfig{Timeout: *dialTimeout, Lazy: *lazyDial})
		if err != nil {
			log.Fatal(err)
		}
		pol := cluster.DefaultCallPolicy()
		pol.Timeout = *rpcTimeout
		pol.Attempts = *rpcRetries
		// The seed only shapes backoff jitter; idempotency tokens are minted
		// under a per-process random nonce, so many workers sharing these
		// shards never collide in the servers' dedup rings.
		tr := cluster.NewRetryTransport(rpcTr, len(addrs), pol, 1)
		defer tr.Close()
		assign, schema, err := cluster.Bootstrap(tr, 0)
		if err != nil {
			log.Fatal(err)
		}
		if assign.P != len(addrs) {
			log.Fatalf("cluster reports %d partitions, dialed %d servers", assign.P, len(addrs))
		}
		numVertices := len(assign.Of)
		var cache storage.NeighborCache
		if *cacheFrac > 0 {
			cache = storage.NewLRUNeighborCache(int(*cacheFrac * float64(numVertices)))
		}
		cp := aligraph.NewClusterPlatform(assign, tr, cache, 1)
		if *degrade {
			cp.Client.Degrade = true
		}
		cp.Client.Fanout = *fanout
		cp.Client.RegisterObs(reg)
		if *stats {
			defer func() { fmt.Printf("client metrics:\n%s", cp.Client.Metrics()) }()
		}
		switch *planFlag {
		case "", "auto":
			// Built-in hybrid on every lane.
		case "adaptive":
			pln := cp.Client.NewPlanner(plan.Config{Interval: *planInterval})
			pln.RegisterObs(reg)
			pln.Start()
			defer pln.Close()
			if *stats {
				// Runs before the client-metrics defer: the summary names the
				// final per-lane strategies the lane table then details.
				defer func() { fmt.Printf("plan: %s\n", pln.Summary()) }()
			}
			fmt.Printf("plan: adaptive, %v decision windows\n", *planInterval)
		default:
			s, err := plan.ParseStrategy(*planFlag)
			if err != nil {
				log.Fatal(err)
			}
			cp.Client.SetPlan(plan.Uniform(s))
			fmt.Printf("plan: forced %s on every lane\n", s)
		}
		fmt.Printf("cluster: %d shards, %d vertices, %d vertex / %d edge types (bootstrapped)\n",
			assign.P, numVertices, schema.NumVertexTypes(), schema.NumEdgeTypes())
		trainer, err = cp.NewGraphSAGE(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if *stream {
			// Live training: queue one synthetic edge-update batch per
			// training step (random edges of the trained type between
			// random vertices, routed to their owning shards) and drain
			// them between batches. Every applied batch advances its
			// shard's epoch; the trainer's per-batch snapshot pins keep
			// each mini-batch consistent regardless.
			feed := cp.NewUpdateStream()
			srng := rand.New(rand.NewSource(*streamSeed))
			for i := 0; i < *steps; i++ {
				add := make([]cluster.RawEdge, 0, *streamBatch)
				for j := 0; j < *streamBatch; j++ {
					add = append(add, cluster.RawEdge{
						Src:    aligraph.ID(srng.Intn(numVertices)),
						Dst:    aligraph.ID(srng.Intn(numVertices)),
						Type:   aligraph.EdgeType(*edgeType),
						Weight: 1,
					})
				}
				feed.PushEdges(assign, add, nil, nil)
			}
			ss := trainer.StreamUpdates(feed, aligraph.StreamConfig{MaxPerTick: assign.P})
			fmt.Printf("stream: queued %d update batches (%d edges per step)\n", feed.Pending(), *streamBatch)
			defer func() {
				fmt.Printf("stream: applied %d update batches during training\n", ss.Applied())
			}()
		}
	} else {
		var g *aligraph.Graph
		switch {
		case *demo:
			g = dataset.Taobao(dataset.TaobaoSmallConfig(*scale))
		case *verticesPath != "" && *edgesPath != "":
			schema, err := aligraph.NewSchema(strings.Split(*vertexTypes, ","), strings.Split(*edgeTypes, ","))
			if err != nil {
				log.Fatal(err)
			}
			l := graphio.NewLoader(schema, *directed)
			vf, err := os.Open(*verticesPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := l.ReadVertices(vf); err != nil {
				log.Fatal(err)
			}
			vf.Close()
			ef, err := os.Open(*edgesPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := l.ReadEdges(ef); err != nil {
				log.Fatal(err)
			}
			ef.Close()
			g, _ = l.Finalize()
		default:
			log.Fatal("need -vertices and -edges, -demo, or -cluster")
		}
		fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
		platform, err := aligraph.NewPlatform(g, aligraph.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		trainer = platform.NewGraphSAGE(cfg)
	}
	defer trainer.Close()
	trainer.RegisterObs(reg)
	if *prefetch > 0 {
		fmt.Printf("prefetch: %d batches ahead, %d workers\n", *prefetch, *prefetchWrk)
	}

	start := time.Now()
	losses, err := trainer.Train(*steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d steps in %v: loss %.4f -> %.4f\n",
		*steps, time.Since(start).Round(time.Millisecond), losses[0], losses[len(losses)-1])

	emb, err := trainer.EmbedAll()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := graphio.WriteEmbeddings(f, emb, emb.Rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d x %d embeddings to %s\n", emb.Rows, emb.Cols, *out)
}
