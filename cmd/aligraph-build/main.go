// Command aligraph-build loads a graph from TSV files, partitions it with
// one of the built-in partitioners, and reports the resulting layout: per-
// partition sizes, edge cut, importance-cache statistics and attribute
// dedup savings. With -demo it generates a Taobao-sim dataset instead of
// reading files (and can dump it with -out-vertices/-out-edges for use with
// aligraph-server).
//
// Usage:
//
//	aligraph-build -vertices v.tsv -edges e.tsv \
//	    -vertex-types user,item -edge-types click,buy \
//	    -partitioner metis -partitions 4
//	aligraph-build -demo -scale 0.2 -out-vertices v.tsv -out-edges e.tsv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/partition"
	"repro/internal/storage"
)

func main() {
	var (
		verticesPath = flag.String("vertices", "", "vertex TSV path")
		edgesPath    = flag.String("edges", "", "edge TSV path")
		vertexTypes  = flag.String("vertex-types", "vertex", "comma-separated vertex type names")
		edgeTypes    = flag.String("edge-types", "edge", "comma-separated edge type names")
		directed     = flag.Bool("directed", true, "treat edges as directed")
		partitioner  = flag.String("partitioner", "metis", "metis|streaming|hash|edgecut")
		partitions   = flag.Int("partitions", 4, "number of partitions")
		cacheTau     = flag.Float64("cache-threshold", 0.2, "importance cache threshold (0 disables)")
		demo         = flag.Bool("demo", false, "generate Taobao-sim instead of reading files")
		scale        = flag.Float64("scale", 0.1, "demo dataset scale")
		outVertices  = flag.String("out-vertices", "", "write the (demo) vertex TSV here")
		outEdges     = flag.String("out-edges", "", "write the (demo) edge TSV here")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *demo:
		g = dataset.Taobao(dataset.TaobaoSmallConfig(*scale))
	case *verticesPath != "" && *edgesPath != "":
		schema, err := graph.NewSchema(strings.Split(*vertexTypes, ","), strings.Split(*edgeTypes, ","))
		if err != nil {
			log.Fatal(err)
		}
		l := graphio.NewLoader(schema, *directed)
		vf, err := os.Open(*verticesPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := l.ReadVertices(vf); err != nil {
			log.Fatal(err)
		}
		vf.Close()
		ef, err := os.Open(*edgesPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := l.ReadEdges(ef); err != nil {
			log.Fatal(err)
		}
		ef.Close()
		g, _ = l.Finalize()
	default:
		log.Fatal("need -vertices and -edges, or -demo")
	}

	fmt.Printf("graph: %d vertices, %d edges, %d vertex types, %d edge types\n",
		g.NumVertices(), g.NumEdges(), g.Schema().NumVertexTypes(), g.Schema().NumEdgeTypes())

	pt, err := partition.ByName(*partitioner)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	a, err := pt.Partition(g, *partitions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition (%s, p=%d): %v, sizes %v, cut %.1f%%, imbalance %.2f\n",
		pt.Name(), *partitions, time.Since(start).Round(time.Millisecond),
		a.Sizes(), 100*a.CutFraction(g), a.Imbalance())

	st := storage.BuildStore(g, storage.DefaultStoreOptions())
	rep := st.Space()
	fmt.Printf("attribute store: %d distinct vectors, dedup %.2fMB vs inline %.2fMB (%.1fx)\n",
		rep.Distinct, float64(rep.DedupBytes)/1e6, float64(rep.InlineBytes)/1e6, rep.Ratio)

	if *cacheTau > 0 {
		sel := storage.SelectImportant(g, 1, *cacheTau)
		fmt.Printf("importance cache (tau=%.2f): %d vertices (%.1f%%)\n",
			*cacheTau, len(sel), 100*float64(len(sel))/float64(g.NumVertices()))
	}

	if *outVertices != "" {
		f, err := os.Create(*outVertices)
		if err != nil {
			log.Fatal(err)
		}
		if err := graphio.WriteVertices(f, g); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *outVertices)
	}
	if *outEdges != "" {
		f, err := os.Create(*outEdges)
		if err != nil {
			log.Fatal(err)
		}
		if err := graphio.WriteEdges(f, g); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *outEdges)
	}
}
