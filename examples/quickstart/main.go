// Quickstart: build a small attributed heterogeneous graph through the
// public API, stand up the platform (partitioning + attribute store +
// importance cache), train a GraphSAGE-style encoder on unsupervised link
// prediction, and inspect the learned embeddings.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	aligraph "repro"
)

func main() {
	// 1. Define the schema: users and items, connected by click/buy edges.
	schema, err := aligraph.NewSchema([]string{"user", "item"}, []string{"click", "buy"})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a toy two-community graph: users 0-19 favour items 40-49,
	// users 20-39 favour items 50-59.
	rng := rand.New(rand.NewSource(1))
	b := aligraph.NewBuilder(schema, true)
	for i := 0; i < 40; i++ {
		b.AddVertex(0, []float64{float64(i % 2), float64(i / 20)}) // toy demographics
	}
	for i := 0; i < 20; i++ {
		b.AddVertex(1, []float64{float64(100 + i)})
	}
	itemBase := func(u aligraph.ID) aligraph.ID {
		if u < 20 {
			return 40
		}
		return 50
	}
	for u := aligraph.ID(0); u < 40; u++ {
		for k := 0; k < 5; k++ {
			item := itemBase(u) + aligraph.ID(rng.Intn(10))
			b.AddEdge(u, item, 0, 1) // click
			b.AddEdge(item, u, 0, 1) // viewed-by (lets walks continue)
			if k == 0 {
				b.AddEdge(u, item, 1, 1) // buy
			}
		}
	}
	g := b.Finalize()
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 3. Stand up the platform: 2 partitions, importance-based caching.
	platform, err := aligraph.NewPlatform(g, aligraph.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("importance cache covers %.1f%% of vertices\n", 100*platform.CacheRate())

	// 4. Train.
	cfg := aligraph.DefaultTrainConfig()
	cfg.HopNums = []int{4, 2}
	cfg.UseAttrs = true
	cfg.AttrDim = 2
	trainer := platform.NewGraphSAGE(cfg)
	losses, err := trainer.Train(150)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loss: %.4f -> %.4f\n", losses[0], losses[len(losses)-1])

	// 5. Same-community users should now score higher than cross-community.
	same, _ := trainer.Score(0, 1)   // both in community A
	cross, _ := trainer.Score(0, 25) // A vs B
	fmt.Printf("score(user0, user1)  = %.3f (same community)\n", same)
	fmt.Printf("score(user0, user25) = %.3f (cross community)\n", cross)
	if same > cross {
		fmt.Println("OK: the encoder separated the communities")
	} else {
		fmt.Println("note: communities not separated (try more steps)")
	}
}
