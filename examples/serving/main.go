// Serving: the online inference tier over a live two-shard cluster.
//
// A GraphSAGE model is warm-trained over two in-process graph servers, then
// handed to the serving tier (internal/serve), which answers embedding and
// link-score lookups with three mechanisms stacked:
//
//  1. request coalescing — concurrent lookups merge into one deduplicated
//     encoder mini-batch per flush window, so the k-hop sampling fan-out
//     (the expensive, RPC-bound part) is paid once per batch;
//  2. an epoch-aware embedding cache — each entry remembers the exact
//     sampled k-hop dependency set it was computed from, and is served only
//     while every dependency is provably unchanged;
//  3. incremental re-embedding — a graph update invalidates ONLY the cached
//     vertices whose dependency set it touched; everything else keeps
//     serving from cache, and a background refresher re-embeds the hot
//     invalidated vertices before anyone asks.
//
// The demo measures each mechanism: coalescing vs one-request-per-batch,
// the scoped invalidation footprint of a single edge insert, and the
// refresher hiding out-of-band churn.
//
// Run with: go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	aligraph "repro"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/partition"
)

func main() {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.05))
	n := g.NumVertices()
	assign, err := (partition.Metis{}).Partition(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	servers := cluster.FromGraph(g, assign)
	// In-process shards behind a transport that charges 200us per remote
	// call — enough to make the sampling fan-out the dominant lookup cost,
	// as it is over a real network.
	tp := cluster.NewLatencyTransport(cluster.NewLocalTransport(servers, 0, 0), 200*time.Microsecond)
	cp := aligraph.NewClusterPlatform(assign, tp, nil, 1)
	fmt.Printf("cluster: 2 shards, %d vertices, %d edges\n", n, g.NumEdges())

	cfg := aligraph.DefaultTrainConfig()
	cfg.Dim = 16
	cfg.UseAttrs = true
	trainer, err := cp.NewGraphSAGE(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()
	losses, err := trainer.Train(40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm-up: 40 steps, loss %.4f -> %.4f\n\n", losses[0], losses[len(losses)-1])

	// --- 1. Coalescing: 64 concurrent cold lookups, serial vs coalesced.
	lookups := func(srv *aligraph.InferenceServer) time.Duration {
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func(v aligraph.ID) {
				defer wg.Done()
				<-start
				if _, err := srv.Embed(v); err != nil {
					log.Fatal(err)
				}
			}(aligraph.ID(i))
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		return time.Since(t0)
	}
	serial := cp.Serve(trainer, aligraph.ServeConfig{MaxBatch: 1, CacheCap: 1})
	serialTime := lookups(serial)
	serial.Close()
	srv := cp.Serve(trainer, aligraph.ServeConfig{
		FlushWindow:  500 * time.Microsecond,
		MaxBatch:     64,
		CacheCap:     n,
		MaxLag:       4,
		RefreshEvery: 5 * time.Millisecond,
	})
	defer srv.Close()
	coalescedTime := lookups(srv)
	st := srv.Stats()
	fmt.Printf("64 concurrent cold lookups:\n")
	fmt.Printf("  one request per batch:  %v\n", serialTime.Round(time.Millisecond))
	fmt.Printf("  coalesced:              %v  (%d flushes, %.1fx)\n\n",
		coalescedTime.Round(time.Millisecond), st.Batches,
		float64(serialTime)/float64(coalescedTime))

	// --- 2. Scoped invalidation: warm every vertex, then insert ONE edge.
	for v := 0; v < n; v++ {
		if _, err := srv.Embed(aligraph.ID(v)); err != nil {
			log.Fatal(err)
		}
	}
	before := srv.Cache().Len()
	rng := rand.New(rand.NewSource(7))
	src := aligraph.ID(rng.Intn(n))
	dropped, err := srv.ApplyUpdate([]cluster.RawEdge{
		{Src: src, Dst: aligraph.ID(rng.Intn(n)), Type: 0, Weight: 1},
	}, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one edge insert at vertex %d: %d of %d cached embeddings invalidated\n",
		src, dropped, before)
	fmt.Printf("  (only vertices whose sampled k-hop neighborhood contains %d; the\n", src)
	fmt.Printf("   other %d keep serving from cache at staleness zero)\n\n", before-dropped)
	if dropped == 0 || dropped >= before {
		log.Fatal("invalidation was not scoped to the touched neighborhood")
	}

	// --- 3. Out-of-band churn: updates pushed straight to a shard, behind
	// the tier's back. The refresher's head probes notice the epoch advance,
	// the staleness bound rejects entries it cannot re-prove, and
	// revalidation restores the ones whose dependencies were untouched.
	s := aligraph.ID(rng.Intn(n))
	p := assign.Part(s)
	for i := 0; i < 5; i++ { // 5 epochs on one shard: past the lag budget
		var ur cluster.UpdateReply
		if err := servers[p].ServeUpdate(cluster.UpdateRequest{Add: []cluster.RawEdge{
			{Src: s, Dst: aligraph.ID(rng.Intn(n)), Type: 0, Weight: 1},
		}}, &ur); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // a few refresher ticks
	for i := 0; i < 200; i++ {
		if _, err := srv.Embed(aligraph.ID(rng.Intn(n))); err != nil {
			log.Fatal(err)
		}
	}
	st = srv.Stats()
	fmt.Printf("after 5 out-of-band updates to shard %d and 200 more lookups:\n", p)
	fmt.Printf("  hit rate %.3f, %d revalidated, %d refreshed in background, %d stale-rejected\n",
		st.HitRate(), st.Revalidated, st.Refreshed, st.Cache.StaleRejects)
	if st.Revalidated == 0 {
		log.Fatal("the refresher never revalidated anything; out-of-band churn was not handled")
	}
	fmt.Println("\nServing stays within the staleness budget without recomputing the")
	fmt.Println("world: updates re-embed only the neighborhoods they touch.")
}
