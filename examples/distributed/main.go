// Distributed: the storage-layer machinery end to end — partition a
// Taobao-sim graph with METIS, serve each partition from a graph server
// over real net/rpc on loopback TCP, compare multi-hop neighborhood access
// with and without importance-based caching (the Figure 9 experiment on a
// live cluster), then train GraphSAGE end to end against the shards: the
// training worker bootstraps graph-free (assignment and schema from the
// Bootstrap RPC), every TRAVERSE edge batch, NEGATIVE pool, NEIGHBORHOOD
// expansion (batched SampleNeighbors RPCs, at most one per owning server
// per hop) and attribute fetch crosses the wire, and a prefetch pipeline
// assembles mini-batches ahead of the optimizer so RPC latency overlaps
// the forward/backward pass.
//
// Run with: go run ./examples/distributed [-parts 2] [-scale 0.05] [-steps 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	aligraph "repro"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/partition"
	"repro/internal/storage"
)

func main() {
	var (
		parts = flag.Int("parts", 4, "number of graph-server partitions")
		scale = flag.Float64("scale", 0.1, "Taobao-sim dataset scale")
		steps = flag.Int("steps", 60, "GraphSAGE training mini-batches")
	)
	flag.Parse()

	g := dataset.Taobao(dataset.TaobaoSmallConfig(*scale))
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Partition with METIS and start one RPC server per partition.
	assign, err := partition.Metis{}.Partition(g, *parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metis: sizes %v, edge cut %.1f%%\n", assign.Sizes(), 100*assign.CutFraction(g))

	servers := cluster.FromGraph(g, assign)
	addrs := make([]string, *parts)
	for i, s := range servers {
		rs, err := cluster.ServeRPC(s, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		addrs[i] = rs.Addr()
		fmt.Printf("  server %d on %s: %d vertices, %d edges\n",
			i, rs.Addr(), s.NumLocalVertices(), s.NumLocalEdges())
	}

	tr, err := cluster.DialRPC(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// The same multi-hop workload with three cache strategies.
	users := g.VerticesOfType(0)
	workload := func(c storage.NeighborCache) time.Duration {
		client := cluster.NewClient(assign, tr, c)
		rng := rand.New(rand.NewSource(1))
		start := time.Now()
		for i := 0; i < 300; i++ {
			v := users[rng.Intn(len(users))]
			if _, err := client.MultiHop(v, 0, 2); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start)
	}

	noCache := workload(storage.NoCache{})
	important := workload(storage.NewImportanceCacheTopFraction(g, 2, 0.2))
	lru := workload(storage.NewLRUNeighborCache(g.NumVertices() / 5))

	fmt.Printf("\n300 two-hop expansions over RPC:\n")
	fmt.Printf("  no cache:          %v\n", noCache.Round(time.Millisecond))
	fmt.Printf("  LRU cache (20%%):   %v\n", lru.Round(time.Millisecond))
	fmt.Printf("  importance (20%%):  %v\n", important.Round(time.Millisecond))
	fmt.Println("\nCaching the out-neighborhoods of high-Imp^(k) vertices removes the")
	fmt.Println("most-travelled remote hops — the paper's Figure 9 on a live cluster.")

	// End-to-end distributed GraphSAGE: the worker never touches the local
	// graph — its partition assignment and schema come from the cluster's
	// Bootstrap RPC — and a depth-4 pipeline assembles batches ahead of the
	// optimizer over the batch-first Source seam.
	bassign, schema, err := cluster.Bootstrap(tr, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbootstrap: %d partitions, %d vertices, %d vertex / %d edge types — no local graph needed\n",
		bassign.P, len(bassign.Of), schema.NumVertexTypes(), schema.NumEdgeTypes())
	cp := aligraph.NewClusterPlatform(bassign, tr, storage.NewLRUNeighborCache(len(bassign.Of)/5), 1)
	cfg := aligraph.DefaultTrainConfig()
	cfg.HopNums = []int{3, 2}
	cfg.Batch = 32
	cfg.UseAttrs = true
	cfg.Pipeline = aligraph.PipelineConfig{Depth: 4, Workers: 2}
	trainer, err := cp.NewGraphSAGE(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()
	fmt.Printf("training GraphSAGE over %d RPC shards (%d steps, batch %d, prefetch depth %d)...\n",
		*parts, *steps, cfg.Batch, cfg.Pipeline.Depth)
	start := time.Now()
	losses, err := trainer.Train(*steps)
	if err != nil {
		log.Fatal(err)
	}
	if len(losses) == 0 {
		fmt.Println("no training steps requested; skipping the convergence check")
		return
	}
	window := len(losses) / 4
	if window < 1 {
		window = 1
	}
	first := avg(losses[:window])
	last := avg(losses[len(losses)-window:])
	fmt.Printf("trained in %v: loss %.4f -> %.4f\n",
		time.Since(start).Round(time.Millisecond), first, last)
	if last >= first {
		log.Fatalf("distributed training did not reduce the loss (%.4f -> %.4f)", first, last)
	}
	fmt.Println("distributed GraphSAGE converges against live RPC shards.")
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
