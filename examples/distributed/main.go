// Distributed: the storage-layer machinery end to end — partition a
// Taobao-sim graph with METIS, serve each partition from a graph server
// over real net/rpc on loopback TCP, compare multi-hop neighborhood access
// with and without importance-based caching (the Figure 9 experiment on a
// live cluster), then train GraphSAGE on a LIVE, CHANGING graph: the
// training worker bootstraps graph-free (assignment and schema from the
// Bootstrap RPC), a prefetch pipeline assembles mini-batches ahead of the
// optimizer, and a feeder goroutine streams edge insertions, deletions and
// attribute rewrites into the shards the whole time. Each applied update
// batch becomes a new epoch of the servers' multi-version snapshot store;
// every training batch pins the snapshot current when it was scheduled, so
// its TRAVERSE draw, all three neighborhood expansions and the attribute
// prefetch read one consistent graph even mid-update — the training loop
// never sees a mixed-epoch batch.
//
// Run with: go run ./examples/distributed [-parts 2] [-scale 0.05] [-steps 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	aligraph "repro"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

func main() {
	var (
		parts  = flag.Int("parts", 4, "number of graph-server partitions")
		scale  = flag.Float64("scale", 0.1, "Taobao-sim dataset scale")
		steps  = flag.Int("steps", 60, "GraphSAGE training mini-batches")
		fanout = flag.Int("fanout", 0, "max concurrent per-shard sub-requests per scatter round: 0 = all shards at once, 1 = sequential")
	)
	flag.Parse()

	g := dataset.Taobao(dataset.TaobaoSmallConfig(*scale))
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Partition with METIS and start one RPC server per partition.
	assign, err := partition.Metis{}.Partition(g, *parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metis: sizes %v, edge cut %.1f%%\n", assign.Sizes(), 100*assign.CutFraction(g))

	servers := cluster.FromGraph(g, assign)
	addrs := make([]string, *parts)
	for i, s := range servers {
		rs, err := cluster.ServeRPC(s, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		addrs[i] = rs.Addr()
		fmt.Printf("  server %d on %s: %d vertices, %d edges\n",
			i, rs.Addr(), s.NumLocalVertices(), s.NumLocalEdges())
	}

	tr, err := cluster.DialRPC(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// The same multi-hop workload with three cache strategies.
	users := g.VerticesOfType(0)
	workload := func(c storage.NeighborCache) time.Duration {
		client := cluster.NewClient(assign, tr, c)
		client.Fanout = *fanout
		rng := rand.New(rand.NewSource(1))
		start := time.Now()
		for i := 0; i < 300; i++ {
			v := users[rng.Intn(len(users))]
			if _, err := client.MultiHop(v, 0, 2); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start)
	}

	noCache := workload(storage.NoCache{})
	important := workload(storage.NewImportanceCacheTopFraction(g, 2, 0.2))
	lru := workload(storage.NewLRUNeighborCache(g.NumVertices() / 5))

	fmt.Printf("\n300 two-hop expansions over RPC:\n")
	fmt.Printf("  no cache:          %v\n", noCache.Round(time.Millisecond))
	fmt.Printf("  LRU cache (20%%):   %v\n", lru.Round(time.Millisecond))
	fmt.Printf("  importance (20%%):  %v\n", important.Round(time.Millisecond))
	fmt.Println("\nCaching the out-neighborhoods of high-Imp^(k) vertices removes the")
	fmt.Println("most-travelled remote hops — the paper's Figure 9 on a live cluster.")

	// Live-training demo: the worker never touches the local graph — its
	// partition assignment and schema come from the cluster's Bootstrap RPC
	// — a depth-4 pipeline assembles pinned batches ahead of the optimizer,
	// and a feeder goroutine streams updates into the shards throughout.
	bassign, schema, err := cluster.Bootstrap(tr, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbootstrap: %d partitions, %d vertices, %d vertex / %d edge types — no local graph needed\n",
		bassign.P, len(bassign.Of), schema.NumVertexTypes(), schema.NumEdgeTypes())
	cp := aligraph.NewClusterPlatform(bassign, tr, storage.NewLRUNeighborCache(len(bassign.Of)/5), 1)
	cp.Client.Fanout = *fanout
	cfg := aligraph.DefaultTrainConfig()
	cfg.HopNums = []int{3, 2}
	cfg.Batch = 32
	cfg.UseAttrs = true
	cfg.Pipeline = aligraph.PipelineConfig{Depth: 4, Workers: 2}
	trainer, err := cp.NewGraphSAGE(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	// The live feed: a producer goroutine pushes update batches — new click
	// edges between random users and items, deletions of edges it added
	// earlier, and attribute rewrites — while training consumes them
	// between batches.
	feed := cp.NewUpdateStream()
	stop := make(chan struct{})
	var feederWG sync.WaitGroup
	n := len(bassign.Of)
	feederWG.Add(1)
	go func() {
		defer feederWG.Done()
		frng := rand.New(rand.NewSource(42))
		var recent []cluster.RawEdge
		for {
			select {
			case <-stop:
				return
			default:
			}
			add := make([]cluster.RawEdge, 0, 4)
			for j := 0; j < 4; j++ {
				e := cluster.RawEdge{
					Src:    graph.ID(frng.Intn(n)),
					Dst:    graph.ID(frng.Intn(n)),
					Type:   0,
					Weight: 1 + frng.Float64(),
				}
				add = append(add, e)
				recent = append(recent, e)
			}
			var remove []cluster.RawEdge
			if len(recent) > 64 { // retire old insertions: deletions stream too
				remove = append(remove, recent[0])
				recent = recent[1:]
			}
			var attrs []cluster.AttrUpdate
			if frng.Intn(4) == 0 { // occasional attribute rewrite
				// Rewrite a perturbed copy of the vertex's real row so the
				// replacement keeps the schema's attribute dimensionality.
				v := graph.ID(frng.Intn(n))
				row := append([]float64(nil), g.VertexAttr(v)...)
				if len(row) > 0 {
					row[frng.Intn(len(row))] = frng.Float64()
				}
				attrs = append(attrs, cluster.AttrUpdate{V: v, Attr: row})
			}
			feed.PushEdges(bassign, add, remove, attrs)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	ss := trainer.StreamUpdates(feed, aligraph.StreamConfig{MaxPerTick: bassign.P})

	fmt.Printf("training GraphSAGE over %d RPC shards on a LIVE graph (%d steps, batch %d, prefetch depth %d)...\n",
		*parts, *steps, cfg.Batch, cfg.Pipeline.Depth)
	start := time.Now()
	losses, err := trainer.Train(*steps)
	close(stop)
	feederWG.Wait()
	if err != nil {
		log.Fatal(err)
	}
	if len(losses) == 0 {
		fmt.Println("no training steps requested; skipping the convergence check")
		return
	}
	window := len(losses) / 4
	if window < 1 {
		window = 1
	}
	first := avg(losses[:window])
	last := avg(losses[len(losses)-window:])
	fmt.Printf("trained in %v: loss %.4f -> %.4f\n",
		time.Since(start).Round(time.Millisecond), first, last)
	fmt.Printf("live updates applied during training: %d batches; server epochs now:", ss.Applied())
	for i, s := range servers {
		fmt.Printf(" shard%d=%d", i, s.UpdateEpoch())
	}
	fmt.Println()
	if last >= first {
		log.Fatalf("live distributed training did not reduce the loss (%.4f -> %.4f)", first, last)
	}
	if ss.Applied() == 0 {
		log.Fatal("the update feed applied nothing: the demo was not live")
	}
	fmt.Printf("client metrics:\n%s", cp.Client.Metrics())
	fmt.Println("distributed GraphSAGE converges while the graph changes underneath —")
	fmt.Println("every mini-batch reads one pinned snapshot epoch, updates land between batches.")
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
