// Distributed: the storage-layer machinery end to end — partition a
// Taobao-sim graph with METIS, serve each partition from a graph server
// over real net/rpc on loopback TCP, and compare multi-hop neighborhood
// access with and without importance-based caching (the Figure 9
// experiment, on a live cluster instead of the in-memory transport).
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/partition"
	"repro/internal/storage"
)

func main() {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.1))
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Partition with METIS and start one RPC server per partition.
	const parts = 4
	assign, err := partition.Metis{}.Partition(g, parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metis: sizes %v, edge cut %.1f%%\n", assign.Sizes(), 100*assign.CutFraction(g))

	servers := cluster.FromGraph(g, assign)
	addrs := make([]string, parts)
	for i, s := range servers {
		rs, err := cluster.ServeRPC(s, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		addrs[i] = rs.Addr()
		fmt.Printf("  server %d on %s: %d vertices, %d edges\n",
			i, rs.Addr(), s.NumLocalVertices(), s.NumLocalEdges())
	}

	tr, err := cluster.DialRPC(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// The same multi-hop workload with three cache strategies.
	users := g.VerticesOfType(0)
	workload := func(c storage.NeighborCache) time.Duration {
		client := cluster.NewClient(assign, tr, c)
		rng := rand.New(rand.NewSource(1))
		start := time.Now()
		for i := 0; i < 300; i++ {
			v := users[rng.Intn(len(users))]
			if _, err := client.MultiHop(v, 0, 2); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start)
	}

	noCache := workload(storage.NoCache{})
	important := workload(storage.NewImportanceCacheTopFraction(g, 2, 0.2))
	lru := workload(storage.NewLRUNeighborCache(g.NumVertices() / 5))

	fmt.Printf("\n300 two-hop expansions over RPC:\n")
	fmt.Printf("  no cache:          %v\n", noCache.Round(time.Millisecond))
	fmt.Printf("  LRU cache (20%%):   %v\n", lru.Round(time.Millisecond))
	fmt.Printf("  importance (20%%):  %v\n", important.Round(time.Millisecond))
	fmt.Println("\nCaching the out-neighborhoods of high-Imp^(k) vertices removes the")
	fmt.Println("most-travelled remote hops — the paper's Figure 9 on a live cluster.")
}
