// Dynamic graphs: embedding an evolving snapshot series with the in-house
// Evolving GNN versus a static model, on the Table 11 multi-class link
// prediction task (classify new edges into community classes) with a burst
// of abnormal cross-community links injected near the end of the series.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"repro/internal/algo"
	"repro/internal/dataset"
)

func main() {
	cfg := dataset.DynamicDefaultConfig()
	cfg.Vertices = 400
	cfg.BurstAt = []int{cfg.T - 1, cfg.T}
	series := dataset.Dynamic(cfg)
	fmt.Printf("dynamic series: %d snapshots over %d vertices, bursts at t=%v\n\n",
		series.D.T(), cfg.Vertices, cfg.BurstAt)

	for t := 1; t <= series.D.T(); t++ {
		g := series.D.At(t)
		fmt.Printf("  t=%d: %d edges (%d burst)\n", t, g.NumEdges(), len(series.BurstEdges[t-1]))
	}
	fmt.Println()

	for _, m := range []algo.DynamicModel{
		algo.NewStaticSAGE(32), // embeds only the final snapshot
		algo.NewTNE(32),        // temporal smoothing, burst-unaware
		algo.NewEvolving(32),   // in-house: burst-aware temporal recurrence
	} {
		micro, macro, err := algo.MultiClassLinkEval(m, series, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s micro-F1 %.1f%%  macro-F1 %.1f%%\n", m.Name(), 100*micro, 100*macro)
	}
	fmt.Println("\nEvolving GNN filters burst links out of the structural corpus and")
	fmt.Println("carries a burst indicator, so abnormal evolution does not corrupt the")
	fmt.Println("embeddings — the Table 11 comparison.")
}
