// Recommendation: the paper's motivating workload — product recommendation
// on a Taobao-like attributed heterogeneous graph. GATNE (the in-house
// multiplex+attribute model) is compared against DeepWalk on held-out
// "click" link prediction, reproducing the Table 8 ordering at toy scale.
//
// Run with: go run ./examples/recommendation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algo"
	"repro/internal/dataset"
)

func main() {
	// Taobao-sim: 2 vertex types, 4 behaviour edge types, 27/32 attributes,
	// power-law degrees — the Table 6 dataset at laptop scale.
	cfg := dataset.TaobaoSmallConfig(0.1)
	cfg.ItemItemEdges = 0
	g := dataset.Taobao(cfg)
	st := dataset.Census(g)
	fmt.Printf("Taobao-sim: %d users, %d items, %d edges\n",
		st.UserVertices, st.ItemVertices, st.Edges)

	// Hold out 15%% of click edges for evaluation.
	rng := rand.New(rand.NewSource(7))
	sp := dataset.SplitLinks(g, 0, 0.15, rng)
	fmt.Printf("held out %d positives, sampled %d negatives\n\n", len(sp.TestPos), len(sp.TestNeg))

	models := []algo.Embedder{
		algo.NewDeepWalk(algo.DefaultWalkConfig()),
		algo.NewGATNE(32),
	}
	for _, m := range models {
		metrics, err := algo.EvalLinkPrediction(m, sp.Train, 0, sp.TestPos, sp.TestNeg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s ROC-AUC %.2f%%  PR-AUC %.2f%%  F1 %.2f%%\n",
			m.Name(), 100*metrics.ROCAUC, 100*metrics.PRAUC, 100*metrics.F1)
	}
	fmt.Println("\nGATNE uses all four behaviour layers plus attributes; DeepWalk sees")
	fmt.Println("only per-layer structure — the gap mirrors the paper's Table 8.")
}
